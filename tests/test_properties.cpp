// Property-based tests: invariants that must hold across randomized
// parameter sweeps. Parameterized gtest drives each property over a grid of
// seeds and configurations.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/burstiness_study.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/sack.hpp"

namespace lossburst {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------------------
// Property: conservation — every injected packet is delivered exactly once
// or dropped exactly once, never duplicated, never lost silently.
// ---------------------------------------------------------------------------

class ConservationProperty : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ConservationProperty, PacketsConservedThroughBottleneck) {
  const auto [seed, buffer] = GetParam();
  sim::Simulator sim(seed);
  net::Network net(sim);
  net::Link* link = net.add_link("l", 10'000'000, 5_ms,
                                 std::make_unique<net::DropTailQueue>(
                                     static_cast<std::size_t>(buffer)));
  const net::Route* route = net.add_route({link});

  class Counter final : public net::Endpoint {
   public:
    void receive(const net::Packet& pkt, const net::PacketOptions*) override {
      ++delivered;
      seen_twice |= !seqs.insert(pkt.seq).second;
    }
    std::uint64_t delivered = 0;
    bool seen_twice = false;
    std::set<net::SeqNum> seqs;
  } sink;

  util::Rng rng(seed);
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    sim.in(rng.uniform_duration(Duration::zero(), 400_ms), [&, i] {
      net::Packet p;
      p.seq = static_cast<net::SeqNum>(i);
      p.size_bytes = 1000;
      p.route = route;
      p.sink = &sink;
      net::inject(std::move(p));
    });
  }
  sim.run();
  EXPECT_FALSE(sink.seen_twice);
  EXPECT_EQ(sink.delivered + link->queue().counters().dropped, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConservationProperty,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                                            ::testing::Values(2, 8, 64)));

// ---------------------------------------------------------------------------
// Property: TCP reliability — for any seed/RTT/buffer, a bounded transfer
// completes and the receiver sees exactly the payload, in order.
// ---------------------------------------------------------------------------

class TcpReliabilityProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int, double>> {};

TEST_P(TcpReliabilityProperty, BoundedTransferAlwaysCompletes) {
  const auto [seed, rtt_ms, buffer_frac] = GetParam();
  sim::Simulator sim(seed);
  net::Network net(sim);
  net::DumbbellConfig cfg;
  cfg.flow_count = 2;
  cfg.access_delays.assign(2, Duration::millis(rtt_ms / 2 - 1));
  cfg.buffer_bdp_fraction = buffer_frac;
  net::Dumbbell bell = net::build_dumbbell(net, cfg);

  tcp::TcpSender::Params sp;
  sp.total_segments = 2000;
  tcp::TcpFlow f1(sim, 1, bell.fwd_routes[0], bell.rev_routes[0], sp);
  tcp::TcpFlow f2(sim, 2, bell.fwd_routes[1], bell.rev_routes[1], sp);
  f1.sender().start(TimePoint::zero());
  f2.sender().start(TimePoint::zero() + 37_ms);
  sim.run_until(TimePoint::zero() + 300_s);

  for (const tcp::TcpFlow* f : {&f1, &f2}) {
    EXPECT_TRUE(f->sender().completed());
    EXPECT_EQ(f->receiver().rcv_next(), 2000u);
    EXPECT_EQ(f->receiver().bytes_received(), 2000u * net::kMssBytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TcpReliabilityProperty,
                         ::testing::Combine(::testing::Values(11u, 12u, 13u),
                                            ::testing::Values(10, 50, 200),
                                            ::testing::Values(0.125, 1.0)));

// ---------------------------------------------------------------------------
// Property: drop traces are monotone in time and every interval is
// non-negative, for any queue discipline.
// ---------------------------------------------------------------------------

class TraceMonotoneProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, net::QueueKind>> {};

TEST_P(TraceMonotoneProperty, DropTimesMonotone) {
  const auto [seed, kind] = GetParam();
  core::DumbbellExperimentConfig cfg;
  cfg.seed = seed;
  cfg.tcp_flows = 6;
  cfg.duration = 10_s;
  cfg.warmup = 1_s;
  cfg.queue = kind;
  cfg.buffer_bdp_fraction = 0.25;
  const auto r = core::run_dumbbell_experiment(cfg);
  for (std::size_t i = 1; i < r.drop_times_s.size(); ++i) {
    EXPECT_LE(r.drop_times_s[i - 1], r.drop_times_s[i]);
  }
  // Histogram mass accounting: every interval landed somewhere.
  if (r.total_drops >= 2) {
    EXPECT_NEAR(r.loss.pdf.total(), static_cast<double>(r.total_drops - 1), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TraceMonotoneProperty,
    ::testing::Combine(::testing::Values(21u, 22u),
                       ::testing::Values(net::QueueKind::kDropTail, net::QueueKind::kRed)));

// ---------------------------------------------------------------------------
// Property: determinism — identical configs yield bit-identical results
// across every experiment entry point.
// ---------------------------------------------------------------------------

class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, CompetitionIsReproducible) {
  core::CompetitionConfig cfg;
  cfg.seed = GetParam();
  cfg.paced_flows = 3;
  cfg.window_flows = 3;
  cfg.duration = 8_s;
  const auto a = core::run_competition(cfg);
  const auto b = core::run_competition(cfg);
  EXPECT_EQ(a.paced_mbps, b.paced_mbps);
  EXPECT_EQ(a.window_mbps, b.window_mbps);
}

TEST_P(DeterminismProperty, ParallelTransferIsReproducible) {
  core::ParallelTransferConfig cfg;
  cfg.seed = GetParam();
  cfg.flows = 3;
  cfg.total_bytes = 4ULL << 20;
  cfg.rtt = 20_ms;
  const auto a = core::run_parallel_transfer(cfg);
  const auto b = core::run_parallel_transfer(cfg);
  EXPECT_EQ(a.latency_s, b.latency_s);
  EXPECT_EQ(a.per_flow_latency_s, b.per_flow_latency_s);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismProperty, ::testing::Values(31u, 32u, 33u));

// ---------------------------------------------------------------------------
// Property: analysis internal consistency over random traces.
// ---------------------------------------------------------------------------

class AnalysisConsistencyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisConsistencyProperty, FractionsMonotoneAndBounded) {
  util::Rng rng(GetParam());
  std::vector<double> times;
  double t = 0.0;
  const int n = static_cast<int>(rng.uniform_int(10, 2000));
  for (int i = 0; i < n; ++i) {
    t += rng.chance(0.7) ? rng.exponential(0.0005) : rng.exponential(0.05);
    times.push_back(t);
  }
  const auto a = analysis::analyze_loss_intervals(times, 0.05);
  EXPECT_LE(a.frac_below_001_rtt, a.frac_below_025_rtt);
  EXPECT_LE(a.frac_below_025_rtt, a.frac_below_1_rtt);
  EXPECT_GE(a.frac_below_001_rtt, 0.0);
  EXPECT_LE(a.frac_below_1_rtt, 1.0);
  EXPECT_GE(a.mean_interval_rtts, 0.0);
  EXPECT_EQ(a.loss_count, static_cast<std::size_t>(n));
}

TEST_P(AnalysisConsistencyProperty, GilbertFitProbabilitiesBounded) {
  util::Rng rng(GetParam() + 100);
  std::vector<bool> lost;
  for (int i = 0; i < 5000; ++i) lost.push_back(rng.chance(rng.uniform(0.01, 0.3)));
  const auto fit = analysis::fit_gilbert(lost);
  EXPECT_GE(fit.p_good_to_bad, 0.0);
  EXPECT_LE(fit.p_good_to_bad, 1.0);
  EXPECT_GE(fit.p_bad_to_good, 0.0);
  EXPECT_LE(fit.p_bad_to_good, 1.0);
  EXPECT_GE(fit.stationary_bad(), 0.0);
  EXPECT_LE(fit.stationary_bad(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisConsistencyProperty,
                         ::testing::Values(41u, 42u, 43u, 44u, 45u));

// ---------------------------------------------------------------------------
// Property: the SACK scoreboard never goes inconsistent under random but
// protocol-plausible event sequences.
// ---------------------------------------------------------------------------

class SackScoreboardProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SackScoreboardProperty, PipeBoundedUnderRandomOperations) {
  util::Rng rng(GetParam());
  tcp::SackScoreboard sb;
  net::SeqNum una = 0;
  net::SeqNum next = 0;
  std::uint64_t emitted = 0;

  for (int step = 0; step < 5000; ++step) {
    const double dice = rng.uniform();
    if (dice < 0.45) {
      // Transmit new data.
      sb.on_transmit(next++, false);
      ++emitted;
    } else if (dice < 0.65 && next > una) {
      // SACK a random in-window block.
      const net::SeqNum lo =
          una + static_cast<net::SeqNum>(rng.uniform_int(0, static_cast<std::int64_t>(next - una) - 1));
      const net::SeqNum hi =
          std::min<net::SeqNum>(next, lo + static_cast<net::SeqNum>(rng.uniform_int(1, 5)));
      sb.on_sack_block(lo, hi);
    } else if (dice < 0.80 && next > una) {
      // Cumulative progress.
      const net::SeqNum new_una =
          una + static_cast<net::SeqNum>(rng.uniform_int(1, static_cast<std::int64_t>(next - una)));
      sb.on_cumack(una, new_una);
      una = new_una;
    } else if (dice < 0.92) {
      sb.declare_losses(una);
      if (const auto hole = sb.next_hole(una)) {
        sb.on_transmit(*hole, true);
        ++emitted;
      }
    } else if (dice < 0.95) {
      sb.reset();
    }

    // Invariants.
    ASSERT_GE(sb.pipe(), 0) << "step " << step;
    ASSERT_LE(sb.pipe(), static_cast<std::int64_t>(emitted)) << "step " << step;
    if (const auto hole = sb.next_hole(una)) {
      ASSERT_GE(*hole, una);
      ASSERT_TRUE(sb.is_lost(*hole));
      ASSERT_FALSE(sb.is_sacked(*hole));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SackScoreboardProperty,
                         ::testing::Values(51u, 52u, 53u, 54u, 55u));

}  // namespace
}  // namespace lossburst

#include <gtest/gtest.h>

#include "util/time.hpp"

namespace lossburst::util {
namespace {

using namespace lossburst::util::literals;

TEST(DurationTest, Construction) {
  EXPECT_EQ(Duration::zero().ns(), 0);
  EXPECT_EQ(Duration::nanos(5).ns(), 5);
  EXPECT_EQ(Duration::micros(3).ns(), 3000);
  EXPECT_EQ(Duration::millis(2).ns(), 2'000'000);
  EXPECT_EQ(Duration::seconds(1).ns(), 1'000'000'000);
}

TEST(DurationTest, Literals) {
  EXPECT_EQ((5_ns).ns(), 5);
  EXPECT_EQ((5_us).ns(), 5'000);
  EXPECT_EQ((5_ms).ns(), 5'000'000);
  EXPECT_EQ((5_s).ns(), 5'000'000'000LL);
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ms).seconds(), 1.5);
  EXPECT_DOUBLE_EQ((1500_us).millis(), 1.5);
  EXPECT_DOUBLE_EQ((1500_ns).micros(), 1.5);
}

TEST(DurationTest, FromSecondsRounds) {
  EXPECT_EQ(Duration::from_seconds(1.5).ns(), 1'500'000'000LL);
  EXPECT_EQ(Duration::from_seconds(0.0000000005).ns(), 1);   // rounds up
  EXPECT_EQ(Duration::from_seconds(-1.5).ns(), -1'500'000'000LL);
}

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((3_ms + 2_ms).ns(), (5_ms).ns());
  EXPECT_EQ((3_ms - 5_ms).ns(), (-(2_ms)).ns());
  EXPECT_EQ((3_ms * 4).ns(), (12_ms).ns());
  EXPECT_EQ((12_ms / 4).ns(), (3_ms).ns());
  EXPECT_DOUBLE_EQ(6_ms / (3_ms), 2.0);
}

TEST(DurationTest, ScaleByFactor) {
  EXPECT_EQ(scale(10_ms, 0.5).ns(), (5_ms).ns());
  EXPECT_EQ(scale(10_ms, 1.25).ns(), 12'500'000);
}

TEST(DurationTest, Comparison) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_GE(2_ms, 2_ms);
  EXPECT_EQ(1000_us, 1_ms);
}

TEST(TimePointTest, Arithmetic) {
  const TimePoint t0 = TimePoint::zero();
  const TimePoint t1 = t0 + 5_ms;
  EXPECT_EQ((t1 - t0).ns(), (5_ms).ns());
  EXPECT_EQ((t1 - 2_ms).ns(), (3_ms).ns());
  EXPECT_LT(t0, t1);
}

TEST(TimePointTest, PlusEquals) {
  TimePoint t = TimePoint::zero();
  t += 7_us;
  EXPECT_EQ(t.ns(), 7000);
}

TEST(TimeFormattingTest, HumanReadable) {
  EXPECT_EQ(to_string(Duration::nanos(12)), "12ns");
  EXPECT_EQ(to_string(Duration::micros(12)), "12us");
  EXPECT_EQ(to_string(Duration::millis(12)), "12ms");
  EXPECT_EQ(to_string(Duration::seconds(12)), "12s");
}

TEST(TimePointTest, MaxSentinel) {
  EXPECT_GT(TimePoint::max(), TimePoint::zero() + Duration::seconds(1'000'000));
}

}  // namespace
}  // namespace lossburst::util

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace lossburst::util {
namespace {

TEST(SplitMix64Test, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64Test, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SplitStreamsAreIndependentOfSiblingCreation) {
  // Derived streams must be reproducible given (parent seed, draw order).
  Rng parent1(99);
  Rng child1 = parent1.split(5);
  Rng parent2(99);
  Rng child2 = parent2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(RngTest, SplitWithDifferentTagsDiffer) {
  Rng parent(99);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  // Not identical streams (first few outputs differ with overwhelming prob).
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.next() != b.next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    saw_lo |= (v == 3);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(8);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(10);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ParetoRespectsScaleAndMean) {
  Rng rng(11);
  const double alpha = 2.5, xm = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(alpha, xm);
    EXPECT_GE(x, xm);
    sum += x;
  }
  // E[X] = alpha*xm/(alpha-1).
  EXPECT_NEAR(sum / n, alpha * xm / (alpha - 1.0), 0.15);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng rng(14);
  const Duration lo = Duration::millis(2), hi = Duration::millis(200);
  for (int i = 0; i < 10000; ++i) {
    const Duration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(RngTest, ExponentialDurationMean) {
  Rng rng(15);
  std::int64_t sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential_duration(Duration::millis(10)).ns();
  EXPECT_NEAR(static_cast<double>(sum) / n, 10e6, 0.2e6);
}

}  // namespace
}  // namespace lossburst::util

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/loss_intervals.hpp"
#include "analysis/validate.hpp"
#include "util/rng.hpp"

namespace lossburst::analysis {
namespace {

TEST(InterLossIntervalsTest, Differences) {
  const auto iv = inter_loss_intervals({1.0, 1.5, 3.0});
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_DOUBLE_EQ(iv[0], 0.5);
  EXPECT_DOUBLE_EQ(iv[1], 1.5);
}

TEST(InterLossIntervalsTest, Degenerate) {
  EXPECT_TRUE(inter_loss_intervals({}).empty());
  EXPECT_TRUE(inter_loss_intervals({1.0}).empty());
}

TEST(AnalyzeTest, PaperBinning) {
  const auto a = analyze_loss_intervals({0.0, 0.1}, 1.0);
  EXPECT_EQ(a.pdf.bins(), 100u);
  EXPECT_DOUBLE_EQ(a.pdf.bin_width(), 0.02);
  EXPECT_DOUBLE_EQ(a.pdf.hi(), 2.0);
}

TEST(AnalyzeTest, NormalizesByRtt) {
  // Intervals of 50 ms with RTT 100 ms => 0.5 RTT each.
  std::vector<double> times;
  for (int i = 0; i < 100; ++i) times.push_back(i * 0.05);
  const auto a = analyze_loss_intervals(times, 0.1);
  EXPECT_NEAR(a.mean_interval_rtts, 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(a.frac_below_1_rtt, 1.0);
  EXPECT_DOUBLE_EQ(a.frac_below_001_rtt, 0.0);
}

TEST(AnalyzeTest, SortsUnorderedInput) {
  const auto a = analyze_loss_intervals({3.0, 1.0, 2.0}, 1.0);
  EXPECT_NEAR(a.mean_interval_rtts, 1.0, 1e-9);
}

TEST(AnalyzeTest, BurstyTraceClusterFractions) {
  // 10 bursts of 10 drops 1 ms apart, bursts 1 s apart; RTT = 1 s.
  std::vector<double> times;
  for (int b = 0; b < 10; ++b) {
    for (int k = 0; k < 10; ++k) times.push_back(b * 1.0 + k * 0.001);
  }
  const auto a = analyze_loss_intervals(times, 1.0);
  // 90 intra-burst intervals of 0.001 RTT, 9 inter-burst of ~0.99 RTT.
  EXPECT_NEAR(a.frac_below_001_rtt, 90.0 / 99.0, 0.01);
  EXPECT_NEAR(a.frac_below_1_rtt, 1.0, 0.02);
  EXPECT_GT(a.cov, 1.5);
  EXPECT_GT(a.first_bin_excess(), 2.0);
}

TEST(AnalyzeTest, PoissonTraceLooksPoisson) {
  util::Rng rng(1);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += rng.exponential(0.5);
    times.push_back(t);
  }
  const auto a = analyze_loss_intervals(times, 1.0);  // mean interval 0.5 RTT
  EXPECT_NEAR(a.cov, 1.0, 0.05);
  EXPECT_NEAR(a.first_bin_excess(), 1.0, 0.1);
  EXPECT_NEAR(a.lag1_autocorr, 0.0, 0.05);
  // Measured PDF tracks the Poisson reference bin-by-bin early on.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(a.pdf.pmf(i), a.poisson_pdf[i], a.poisson_pdf[i] * 0.3);
  }
}

TEST(AnalyzeTest, EmptyAndSingletonTraces) {
  const auto a = analyze_loss_intervals({}, 1.0);
  EXPECT_EQ(a.loss_count, 0u);
  EXPECT_DOUBLE_EQ(a.mean_interval_rtts, 0.0);
  const auto b = analyze_loss_intervals({5.0}, 1.0);
  EXPECT_EQ(b.loss_count, 1u);
}

TEST(AnalyzeTest, ZeroRttGuard) {
  const auto a = analyze_loss_intervals({1.0, 2.0}, 0.0);
  EXPECT_EQ(a.loss_count, 2u);
  EXPECT_DOUBLE_EQ(a.mean_interval_rtts, 0.0);
}

TEST(AnalyzeNormalizedTest, MatchesTimesPath) {
  std::vector<double> times;
  for (int i = 0; i < 50; ++i) times.push_back(i * 0.02);
  const auto via_times = analyze_loss_intervals(times, 0.1);
  std::vector<double> intervals(49, 0.2);
  const auto via_intervals = analyze_normalized_intervals(intervals);
  EXPECT_NEAR(via_times.mean_interval_rtts, via_intervals.mean_interval_rtts, 1e-9);
  EXPECT_NEAR(via_times.frac_below_1_rtt, via_intervals.frac_below_1_rtt, 1e-9);
}

TEST(ValidateTest, AcceptsSimilarTraces) {
  ProbeTraceSummary a{10000, 100, 0.5, 0.9};
  ProbeTraceSummary b{10000, 120, 0.45, 0.85};
  const auto v = validate_probe_pair(a, b);
  EXPECT_TRUE(v.validated);
}

TEST(ValidateTest, RejectsFewLosses) {
  ProbeTraceSummary a{10000, 3, 0.5, 0.9};
  ProbeTraceSummary b{10000, 120, 0.5, 0.9};
  const auto v = validate_probe_pair(a, b);
  EXPECT_FALSE(v.validated);
  EXPECT_STREQ(v.reason, "too few losses to judge");
}

TEST(ValidateTest, RejectsDivergentLossRates) {
  ProbeTraceSummary a{10000, 20, 0.5, 0.9};
  ProbeTraceSummary b{10000, 400, 0.5, 0.9};
  EXPECT_FALSE(validate_probe_pair(a, b).validated);
}

TEST(ValidateTest, RejectsDivergentClusterFractions) {
  ProbeTraceSummary a{10000, 100, 0.9, 0.95};
  ProbeTraceSummary b{10000, 100, 0.1, 0.95};
  EXPECT_FALSE(validate_probe_pair(a, b).validated);
}

TEST(ValidateTest, RejectsDamagedTraces) {
  // A trace whose reader rejected too many rows cannot be trusted, no
  // matter how well the two runs agree.
  ProbeTraceSummary a{10000, 100, 0.5, 0.9, 500};  // 500/10500 ~ 4.8% malformed
  ProbeTraceSummary b{10000, 120, 0.45, 0.85};
  const auto v = validate_probe_pair(a, b);
  EXPECT_FALSE(v.validated);
  EXPECT_STREQ(v.reason, "too many malformed trace rows");

  ValidationPolicy loose;
  loose.max_malformed_fraction = 0.10;
  EXPECT_TRUE(validate_probe_pair(a, b, loose).validated);
}

TEST(ValidateTest, PolicyIsTunable) {
  ProbeTraceSummary a{10000, 20, 0.5, 0.9};
  ProbeTraceSummary b{10000, 50, 0.5, 0.9};
  ValidationPolicy strict;
  strict.max_rate_ratio = 1.5;
  EXPECT_FALSE(validate_probe_pair(a, b, strict).validated);
  ValidationPolicy loose;
  loose.max_rate_ratio = 5.0;
  EXPECT_TRUE(validate_probe_pair(a, b, loose).validated);
}

}  // namespace
}  // namespace lossburst::analysis

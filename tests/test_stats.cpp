#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lossburst::util {
namespace {

TEST(OnlineStatsTest, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeEqualsSequential) {
  Rng rng(1);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStatsTest, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SummaryTest, PercentilesInterpolate) {
  Summary s({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25.0), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);  // midway between order stats
}

TEST(SummaryTest, FractionBelow) {
  Summary s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_below(2.5), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(100.0), 1.0);
  // Strictly below: value equal to a sample does not count it.
  EXPECT_DOUBLE_EQ(s.fraction_below(3.0), 0.5);
}

TEST(SummaryTest, EmptyIsNaN) {
  Summary s({});
  EXPECT_TRUE(std::isnan(s.percentile(50.0)));
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_EQ(s.count(), 0u);
}

TEST(SummaryTest, MeanAndStddev) {
  Summary s({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(CovTest, PoissonLikeIsNearOne) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng.exponential(1.0));
  EXPECT_NEAR(coefficient_of_variation(v), 1.0, 0.02);
}

TEST(CovTest, ConstantIsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({3.0, 3.0, 3.0, 3.0}), 0.0);
}

TEST(CovTest, BurstyExceedsOne) {
  // Mixture of tiny and huge intervals: a bursty process signature.
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 100 == 0 ? 100.0 : 0.001);
  EXPECT_GT(coefficient_of_variation(v), 2.0);
}

TEST(AutocorrTest, IndependentSamplesNearZero) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 100000; ++i) v.push_back(rng.uniform());
  EXPECT_NEAR(autocorrelation(v, 1), 0.0, 0.02);
}

TEST(AutocorrTest, AlternatingIsNegative) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_NEAR(autocorrelation(v, 1), -1.0, 0.01);
  EXPECT_NEAR(autocorrelation(v, 2), 1.0, 0.01);
}

TEST(AutocorrTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(autocorrelation({}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0}, 1), 0.0);
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 1.0, 1.0}, 1), 0.0);  // zero variance
  EXPECT_DOUBLE_EQ(autocorrelation({1.0, 2.0}, 5), 0.0);       // lag too large
}

}  // namespace
}  // namespace lossburst::util

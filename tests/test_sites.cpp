#include <gtest/gtest.h>

#include <set>

#include "inet/sites.hpp"

namespace lossburst::inet {
namespace {

using namespace lossburst::util::literals;
using util::Duration;

TEST(SitesTest, TwentySixSitesAsInTable1) {
  EXPECT_EQ(planetlab_sites().size(), 26u);
}

TEST(SitesTest, HostnamesUnique) {
  std::set<std::string> names;
  for (const auto& s : planetlab_sites()) names.insert(s.hostname);
  EXPECT_EQ(names.size(), 26u);
}

TEST(SitesTest, GeographicMixMatchesPaper) {
  // "6 are in California, 11 are in other parts of United States, 3 are in
  // Canada and the rest are in Asia, Europe and Southern America."
  int california = 0, canada = 0;
  for (const auto& s : planetlab_sites()) {
    if (s.location.find(", CA") != std::string::npos) ++california;
    if (s.location.find("Canada") != std::string::npos) ++canada;
  }
  EXPECT_EQ(california, 6);
  EXPECT_EQ(canada, 3);
}

TEST(SitesTest, CoordinatesPlausible) {
  for (const auto& s : planetlab_sites()) {
    EXPECT_GE(s.lat_deg, -90.0);
    EXPECT_LE(s.lat_deg, 90.0);
    EXPECT_GE(s.lon_deg, -180.0);
    EXPECT_LE(s.lon_deg, 180.0);
  }
}

TEST(GreatCircleTest, ZeroForSamePoint) {
  const auto& s = planetlab_sites()[0];
  EXPECT_NEAR(great_circle_km(s, s), 0.0, 1e-9);
}

TEST(GreatCircleTest, Symmetric) {
  const auto& a = planetlab_sites()[0];
  const auto& b = planetlab_sites()[21];  // Beijing
  EXPECT_NEAR(great_circle_km(a, b), great_circle_km(b, a), 1e-9);
}

TEST(GreatCircleTest, KnownDistanceLaToBeijing) {
  // LA <-> Beijing is roughly 10,000 km.
  const auto& la = planetlab_sites()[0];
  const auto& beijing = planetlab_sites()[21];
  const double km = great_circle_km(la, beijing);
  EXPECT_GT(km, 9'000.0);
  EXPECT_LT(km, 11'000.0);
}

TEST(RttModelTest, RangeMatchesPaperSpread) {
  // "The RTTs of these paths have a range from 2ms to more than 200ms" and
  // the highest measured "more than 300ms".
  const auto& sites = planetlab_sites();
  Duration min_rtt = Duration::seconds(999);
  Duration max_rtt = Duration::zero();
  for (std::size_t i = 0; i < sites.size(); ++i) {
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (i == j) continue;
      const Duration rtt = estimate_rtt(sites[i], sites[j]);
      min_rtt = std::min(min_rtt, rtt);
      max_rtt = std::max(max_rtt, rtt);
    }
  }
  EXPECT_LE(min_rtt, 10_ms);
  EXPECT_GE(min_rtt, 2_ms);
  EXPECT_GE(max_rtt, 200_ms);
  EXPECT_LE(max_rtt, 500_ms);
}

TEST(RttModelTest, FloorAtTwoMilliseconds) {
  // Co-located sites (UCLA / Marina del Rey) hit the 2 ms floor region.
  const auto& sites = planetlab_sites();
  const Duration rtt = estimate_rtt(sites[1], sites[4]);  // same coordinates
  EXPECT_EQ(rtt, 2_ms);
}

TEST(PairsTest, SixHundredFiftyDirectionalEdges) {
  // "The complete graph formed by these 26 sites has 650 directional edges."
  const auto pairs = all_directional_pairs();
  EXPECT_EQ(pairs.size(), 650u);
  std::set<std::pair<std::size_t, std::size_t>> unique(pairs.begin(), pairs.end());
  EXPECT_EQ(unique.size(), 650u);
  for (const auto& [a, b] : pairs) EXPECT_NE(a, b);
}

}  // namespace
}  // namespace lossburst::inet

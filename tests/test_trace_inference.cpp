// TCP-trace loss inference: unit behaviour plus the end-to-end bias
// demonstration the paper's §2 methodology argument predicts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "analysis/trace_inference.hpp"
#include "core/noise.hpp"
#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

namespace lossburst::analysis {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

TEST(InferLossesTest, NoRetransmissionsNoLosses) {
  const auto r = infer_losses_from_tx_trace({0.0, 0.1, 0.2}, {0, 1, 2});
  EXPECT_EQ(r.inferred_count, 0u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_TRUE(r.loss_times_s.empty());
}

TEST(InferLossesTest, RetransmissionMarksOriginalTime) {
  // Seq 1 sent at 0.1, retransmitted at 0.5: the loss is timed at 0.1.
  const auto r = infer_losses_from_tx_trace({0.0, 0.1, 0.2, 0.5}, {0, 1, 2, 1});
  EXPECT_EQ(r.inferred_count, 1u);
  EXPECT_EQ(r.retransmissions, 1u);
  ASSERT_EQ(r.loss_times_s.size(), 1u);
  EXPECT_DOUBLE_EQ(r.loss_times_s[0], 0.1);
}

TEST(InferLossesTest, RepeatedRetransmissionCountedOnce) {
  const auto r = infer_losses_from_tx_trace({0.0, 0.5, 1.5, 3.5}, {0, 0, 0, 0});
  EXPECT_EQ(r.inferred_count, 1u);
  EXPECT_EQ(r.retransmissions, 3u);
}

TEST(InferLossesTest, GoBackNInflatesInference) {
  // Segments 0..4 sent; only 2 was lost, but a timeout resends 2,3,4.
  // The inference wrongly flags 3 and 4 as lost — the systematic
  // over-counting bias of trace-based measurement.
  const auto r = infer_losses_from_tx_trace({0.0, 0.1, 0.2, 0.3, 0.4, 1.2, 1.3, 1.4},
                                            {0, 1, 2, 3, 4, 2, 3, 4});
  EXPECT_EQ(r.inferred_count, 3u);
}

TEST(InferLossesTest, OutputSortedByTime) {
  const auto r = infer_losses_from_tx_trace({0.0, 0.1, 0.2, 0.9, 1.0}, {0, 1, 2, 2, 0});
  ASSERT_EQ(r.loss_times_s.size(), 2u);
  EXPECT_LT(r.loss_times_s[0], r.loss_times_s[1]);
}

TEST(InferLossesTest, DeterministicRegardlessOfContainerCapacity) {
  // Regression for the unordered_map-based implementation, whose
  // loss-time ordering could in principle follow hash-table iteration
  // order — which libstdc++ is free to vary with reserve size or version.
  // The inference must be a pure function of the trace: identical output
  // for identical input regardless of input-vector capacity, and exactly
  // what a reference std::map computation predicts.
  std::vector<double> times;
  std::vector<std::uint64_t> seqs;
  std::uint64_t lcg = 12345;
  for (int i = 0; i < 5000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    times.push_back(static_cast<double>(i) * 1e-3);
    seqs.push_back((lcg >> 33) % 1500);  // plenty of repeats
  }

  // Reference: ordered map keyed by seq — hash-free by construction.
  std::map<std::uint64_t, double> first_tx;
  std::map<std::uint64_t, bool> counted;
  InferredLosses expect;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    auto [it, inserted] = first_tx.try_emplace(seqs[i], times[i]);
    if (inserted) continue;
    ++expect.retransmissions;
    if (!counted[seqs[i]]) {
      counted[seqs[i]] = true;
      ++expect.inferred_count;
      expect.loss_times_s.push_back(it->second);
    }
  }
  std::sort(expect.loss_times_s.begin(), expect.loss_times_s.end());

  // Two input copies with wildly different capacities (the old failure
  // mode: reserve size changed the hash table's bucket count and thus its
  // iteration order).
  std::vector<double> times_big;
  std::vector<std::uint64_t> seqs_big;
  times_big.reserve(1 << 16);
  seqs_big.reserve(1 << 16);
  times_big = times;
  seqs_big = seqs;

  const auto a = infer_losses_from_tx_trace(times, seqs);
  const auto b = infer_losses_from_tx_trace(times_big, seqs_big);

  EXPECT_EQ(a.inferred_count, expect.inferred_count);
  EXPECT_EQ(a.retransmissions, expect.retransmissions);
  ASSERT_EQ(a.loss_times_s.size(), expect.loss_times_s.size());
  for (std::size_t i = 0; i < a.loss_times_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.loss_times_s[i], expect.loss_times_s[i]) << "index " << i;
  }
  EXPECT_EQ(b.inferred_count, a.inferred_count);
  EXPECT_EQ(b.retransmissions, a.retransmissions);
  EXPECT_EQ(b.loss_times_s, a.loss_times_s);
}

TEST(CompareInferenceTest, ComputesRatioAndFractions) {
  const std::vector<double> truth = {0.0, 0.0005, 0.001, 1.0};
  const std::vector<double> inferred = {0.0, 0.5, 1.0, 1.5, 2.0, 2.5};
  const auto bias = compare_inference(truth, inferred, 0.1);
  EXPECT_EQ(bias.true_losses, 4u);
  EXPECT_EQ(bias.inferred_losses, 6u);
  EXPECT_DOUBLE_EQ(bias.count_ratio, 1.5);
  EXPECT_GT(bias.true_frac_below_001, bias.inferred_frac_below_001);
}

TEST(TraceInferenceEndToEnd, SenderTraceReconstructsMostLosses) {
  // One NewReno flow over a lossy bottleneck. Compare the router's drop
  // trace for this flow against the sender-trace inference.
  sim::Simulator sim(42);
  net::Network network(sim);
  net::DumbbellConfig dc;
  dc.flow_count = 1;
  dc.access_delays = {24_ms};
  dc.buffer_bdp_fraction = 0.25;
  net::Dumbbell bell = net::build_dumbbell(network, dc);
  net::LossTrace truth;
  bell.bottleneck_fwd->queue().set_tracer(&truth);

  tcp::TcpSender::Params sp;
  sp.total_segments = 20000;
  tcp::TcpFlow flow(sim, 1, bell.fwd_routes[0], bell.rev_routes[0], sp);
  flow.sender().enable_tx_trace();
  flow.sender().start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + 120_s);
  ASSERT_TRUE(flow.sender().completed());
  ASSERT_GT(truth.drops().size(), 10u);

  std::vector<double> times;
  std::vector<std::uint64_t> seqs;
  for (const auto& rec : flow.sender().tx_trace()) {
    times.push_back(rec.time.seconds());
    seqs.push_back(rec.seq);
  }
  const auto inferred = infer_losses_from_tx_trace(times, seqs);

  // Every genuinely dropped data segment was eventually retransmitted (the
  // transfer completed), so inference must find at least the true count;
  // go-back-N may add spurious ones.
  EXPECT_GE(inferred.inferred_count, truth.drops().size());
  // And not be wildly inflated in this mostly-fast-recovery scenario.
  EXPECT_LT(inferred.inferred_count, truth.drops().size() * 4);
}

}  // namespace
}  // namespace lossburst::analysis

// Fault-injection layer tests (DESIGN.md §10).
//
// The headline is the closed loop: inject known Gilbert-Elliott (p, q)
// burst-loss parameters on the dumbbell bottleneck, probe it with CBR
// traffic exactly as the paper's methodology does, and check that the
// analysis fitter recovers the injected parameters. That one test exercises
// the plan, the injector's RNG derivation, the link datapath hook, and the
// analysis stack against each other.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "analysis/gilbert.hpp"
#include "core/dumbbell_experiment.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/cbr.hpp"
#include "tcp/flow.hpp"
#include "util/thread_pool.hpp"

namespace lossburst {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------------------
// Plan grammar.

TEST(FaultPlanTest, ParsesFullGrammar) {
  std::istringstream in(
      "# comment line\n"
      "seed 42\n"
      "\n"
      "gilbert bottleneck.fwd p=0.02 q=0.3 loss=0.9 start=1 stop=30\n"
      "flap bottleneck.fwd at=5 down=2 up=4 cycles=3 policy=park\n"
      "stall bottleneck.rev at=10 dur=0.2 every=5 count=4\n"
      "corrupt bottleneck.fwd p=0.001 dup=0.0005\n");
  const fault::PlanParseResult r = fault::parse_plan(in);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.plan.seed, 42u);
  ASSERT_EQ(r.plan.gilbert.size(), 1u);
  EXPECT_EQ(r.plan.gilbert[0].link, "bottleneck.fwd");
  EXPECT_DOUBLE_EQ(r.plan.gilbert[0].p_good_to_bad, 0.02);
  EXPECT_DOUBLE_EQ(r.plan.gilbert[0].p_bad_to_good, 0.3);
  EXPECT_DOUBLE_EQ(r.plan.gilbert[0].drop_in_bad, 0.9);
  EXPECT_DOUBLE_EQ(r.plan.gilbert[0].start_s, 1.0);
  EXPECT_DOUBLE_EQ(r.plan.gilbert[0].stop_s, 30.0);
  ASSERT_EQ(r.plan.flaps.size(), 1u);
  EXPECT_EQ(r.plan.flaps[0].cycles, 3u);
  EXPECT_EQ(r.plan.flaps[0].policy, fault::DownPolicy::kPark);
  ASSERT_EQ(r.plan.stalls.size(), 1u);
  EXPECT_EQ(r.plan.stalls[0].link, "bottleneck.rev");
  EXPECT_DOUBLE_EQ(r.plan.stalls[0].every_s, 5.0);
  ASSERT_EQ(r.plan.corrupt.size(), 1u);
  EXPECT_DOUBLE_EQ(r.plan.corrupt[0].duplicate_prob, 0.0005);
  // First-mention order of links, not directive order.
  const auto links = r.plan.links();
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], "bottleneck.fwd");
  EXPECT_EQ(links[1], "bottleneck.rev");
}

TEST(FaultPlanTest, RoundTripsThroughFormat) {
  fault::FaultPlan plan;
  plan.seed = 0xdecaf;
  plan.gilbert.push_back({"a", 0.015, 0.35, 0.8, 2.0, 55.5});
  plan.gilbert.push_back({"b", 1.0 / 3.0, 1.0 / 7.0, 1.0, 0.0, -1.0});
  plan.flaps.push_back({"a", 5.25, 2.0, 4.0, 3, fault::DownPolicy::kPark});
  plan.flaps.push_back({"c", 1.0, 0.5, 0.5, 1, fault::DownPolicy::kDrop});
  plan.stalls.push_back({"b", 10.0, 0.2, 5.0, 4});
  plan.corrupt.push_back({"c", 0.001, 0.0005, 1.0, 9.0});
  const std::string text = fault::format_plan(plan);
  std::istringstream in(text);
  const fault::PlanParseResult r = fault::parse_plan(in);
  ASSERT_TRUE(r.ok) << r.error << "\nserialized:\n" << text;
  EXPECT_EQ(r.plan, plan) << "serialized:\n" << text;
}

TEST(FaultPlanTest, RejectsMalformedInput) {
  const char* bad[] = {
      "wobble l p=0.1\n",                 // unknown directive
      "gilbert\n",                        // missing link
      "gilbert l p=nan\n",                // non-finite number
      "gilbert l p=1.5\n",                // probability out of range
      "gilbert l p=0.1 bogus=3\n",        // unknown key
      "flap l at=5 down=0\n",             // non-positive duration
      "flap l at=5 policy=sideways\n",    // unknown policy
      "stall l dur=-1\n",                 // negative duration
      "corrupt l p=2\n",                  // probability out of range
      "seed notanumber\n",                // bad seed
  };
  for (const char* text : bad) {
    std::istringstream in(std::string("seed 1\n") + text);
    const fault::PlanParseResult r = fault::parse_plan(in);
    EXPECT_FALSE(r.ok) << "accepted: " << text;
    EXPECT_NE(r.error.find("line 2"), std::string::npos)
        << "error not line-numbered for: " << text << " -> " << r.error;
    EXPECT_TRUE(r.plan.empty()) << "partial plan leaked for: " << text;
  }
}

TEST(FaultPlanTest, RejectsConflictingFlapSpecs) {
  {
    // Second spec starts inside the first's two-cycle span [1 s, 4 s).
    std::istringstream in(
        "flap l at=1 down=1 up=1 cycles=2 policy=drop\n"
        "flap l at=2.5 down=1 policy=drop\n");
    const fault::PlanParseResult r = fault::parse_plan(in);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("overlapping flap windows"), std::string::npos) << r.error;
    EXPECT_TRUE(r.plan.empty());
  }
  {
    // Disjoint windows, but a link has exactly one down policy.
    std::istringstream in(
        "flap l at=1 down=1 policy=drop\n"
        "flap l at=10 down=1 policy=park\n");
    const fault::PlanParseResult r = fault::parse_plan(in);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("conflicting flap policies"), std::string::npos) << r.error;
  }
  {
    // Disjoint windows with one policy are a legitimate schedule.
    std::istringstream in(
        "flap l at=1 down=1 policy=park\n"
        "flap l at=10 down=1 policy=park\n"
        "flap other at=1.5 down=1 policy=drop\n");
    const fault::PlanParseResult r = fault::parse_plan(in);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.plan.flaps.size(), 3u);
  }
}

TEST(FaultPlanTest, MissingFileFailsCleanly) {
  const fault::PlanParseResult r = fault::parse_plan_file("/nonexistent/plan.txt");
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
  EXPECT_TRUE(r.plan.empty());
}

// ---------------------------------------------------------------------------
// Injector binding.

TEST(FaultInjectorTest, UnknownLinkThrows) {
  sim::Simulator sim(1);
  net::Network network(sim);
  (void)network.add_link("real", 8'000'000, 0_ms, std::make_unique<net::DropTailQueue>(8));
  fault::FaultPlan plan;
  plan.gilbert.push_back({"imaginary", 0.1, 0.5, 1.0, 0.0, -1.0});
  EXPECT_THROW(fault::FaultInjector(network, plan), std::runtime_error);
}

TEST(FaultInjectorTest, ConflictingFlapSpecsThrow) {
  sim::Simulator sim(1);
  net::Network network(sim);
  (void)network.add_link("l", 8'000'000, 0_ms, std::make_unique<net::DropTailQueue>(8));
  // Programmatically built plans bypass parse_plan(), so the injector must
  // reject overlap/policy conflicts itself.
  fault::FaultPlan plan;
  plan.flaps.push_back({"l", 1.0, 1.0, 1.0, 2, fault::DownPolicy::kDrop});
  plan.flaps.push_back({"l", 2.5, 1.0, 1.0, 1, fault::DownPolicy::kDrop});
  EXPECT_THROW(fault::FaultInjector(network, plan), std::runtime_error);
  plan.flaps[1] = {"l", 10.0, 1.0, 1.0, 1, fault::DownPolicy::kPark};
  EXPECT_THROW(fault::FaultInjector(network, plan), std::runtime_error);
  plan.flaps[1] = {"l", 10.0, 1.0, 1.0, 1, fault::DownPolicy::kDrop};
  EXPECT_NO_THROW(fault::FaultInjector(network, plan));
}

TEST(FaultInjectorTest, CountersKeyedByLink) {
  sim::Simulator sim(1);
  net::Network network(sim);
  (void)network.add_link("l", 8'000'000, 0_ms, std::make_unique<net::DropTailQueue>(8));
  fault::FaultPlan plan;
  plan.flaps.push_back({"l", 1.0, 1.0, 1.0, 1, fault::DownPolicy::kDrop});
  fault::FaultInjector inj(network, plan);
  EXPECT_TRUE(inj.active());
  EXPECT_EQ(inj.counters("l").flap_drops, 0u);
  EXPECT_THROW((void)inj.counters("other"), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Closed-loop Gilbert validation: inject (p, q), probe, fit, recover.

struct GilbertLoopResult {
  analysis::GilbertFit fit;
  std::uint64_t sent = 0;
  std::uint64_t lost = 0;
  fault::FaultCounters counters;
};

GilbertLoopResult run_gilbert_loop(std::uint64_t seed, double p, double q) {
  sim::Simulator sim(seed);
  net::Network network(sim);
  net::DumbbellConfig dcfg;
  dcfg.flow_count = 1;
  dcfg.access_delays.assign(1, Duration::millis(10));
  net::Dumbbell bell = net::build_dumbbell(network, dcfg);

  fault::FaultPlan plan;
  plan.seed = seed;
  plan.gilbert.push_back({"bottleneck.fwd", p, q, 1.0, 0.0, -1.0});
  fault::FaultInjector inj(network, plan);

  // The paper's probe methodology: CBR on a strict schedule, losses read
  // off the receiver's sequence gaps. 3.2 Mbps of probes on a 100 Mbps
  // bottleneck — the only loss process at work is the injected chain.
  tcp::CbrSource::Params cp;
  cp.packet_bytes = 400;
  cp.interval = Duration::millis(1);
  cp.duration = Duration::seconds(60);
  tcp::CbrSource src(sim, 1, cp);
  tcp::ProbeSink sink;
  src.connect(bell.fwd_routes[0], &sink);
  src.start(TimePoint::zero());
  sim.run();

  GilbertLoopResult out;
  out.sent = src.packets_sent();
  std::vector<bool> lost(out.sent, true);
  for (const auto& a : sink.arrivals()) lost[a.seq] = false;
  for (const bool l : lost) out.lost += l ? 1u : 0u;
  out.fit = analysis::fit_gilbert(lost);
  out.counters = inj.counters("bottleneck.fwd");
  return out;
}

TEST(FaultGilbertTest, ClosedLoopRecoversInjectedParameters) {
  constexpr double kP = 0.02;   // Good -> Bad
  constexpr double kQ = 0.25;   // Bad -> Good
  const double stationary = kP / (kP + kQ);
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    const GilbertLoopResult r = run_gilbert_loop(seed, kP, kQ);
    ASSERT_GT(r.sent, 50'000u);
    // Every injected drop is visible as a probe gap, and nothing else drops.
    EXPECT_EQ(r.counters.gilbert_drops, r.lost) << "seed " << seed;
    ASSERT_GT(r.lost, 0u);
    EXPECT_NEAR(r.fit.p_good_to_bad, kP, 0.25 * kP) << "seed " << seed;
    EXPECT_NEAR(r.fit.p_bad_to_good, kQ, 0.25 * kQ) << "seed " << seed;
    EXPECT_NEAR(r.fit.loss_rate, stationary, 0.25 * stationary) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Burst-batched fault advance (DESIGN.md §11): advance_burst() must draw
// the same verdicts from the same streams as n scalar calls, leaving the
// RNGs in the same state afterwards.

namespace {

fault::LinkFaultState make_burst_state(std::uint64_t seed, bool gilbert, bool wire) {
  fault::LinkFaultState s;
  util::Rng root = util::Rng(seed).split(1);
  if (gilbert) {
    s.gilbert = fault::GilbertChannel(0.05, 0.3, 0.8, root.split(1));
    s.gilbert_enabled = true;
  }
  s.corrupt_rng = root.split(2);
  if (wire) {
    s.corrupt_enabled = true;
    s.corrupt_prob = 0.07;
    s.duplicate_prob = 0.04;
  }
  return s;
}

}  // namespace

TEST(FaultBurstTest, AdvanceBurstBitIdenticalToScalarForAllSizes) {
  // Every enabled-layer combination, burst sizes 1..64 (kMaxBatch).
  for (const bool gilbert : {false, true}) {
    for (const bool wire : {false, true}) {
      for (std::uint32_t n = 1; n <= net::Link::kMaxBatch; ++n) {
        fault::LinkFaultState scalar = make_burst_state(7'000 + n, gilbert, wire);
        fault::LinkFaultState burst = make_burst_state(7'000 + n, gilbert, wire);
        const std::int64_t t0 = 1'000'000;
        std::vector<std::uint8_t> want(n, 0);
        for (std::uint32_t i = 0; i < n; ++i) {
          // The scalar path: loss first; corruption/duplication dice only
          // roll for packets the chain lets through (Link::finish_tx).
          if (scalar.loss_drop(t0 + i)) {
            want[i] = fault::LinkFaultState::kVerdictGilbertDrop;
            continue;
          }
          if (scalar.corrupt_now(t0 + i)) want[i] |= fault::LinkFaultState::kVerdictCorrupt;
          if (scalar.duplicate_now(t0 + i)) want[i] |= fault::LinkFaultState::kVerdictDuplicate;
        }
        std::vector<std::uint8_t> got(n, 0xFF);
        burst.advance_burst(t0, n, got.data());
        ASSERT_EQ(got, want) << "gilbert=" << gilbert << " wire=" << wire << " n=" << n;
        // The streams must also land in the same position: one more scalar
        // draw from each state has to agree.
        EXPECT_EQ(scalar.loss_drop(t0 + n), burst.loss_drop(t0 + n));
        EXPECT_EQ(scalar.corrupt_now(t0 + n), burst.corrupt_now(t0 + n));
        EXPECT_EQ(scalar.duplicate_now(t0 + n), burst.duplicate_now(t0 + n));
      }
    }
  }
}

TEST(FaultBurstTest, NextChangeReportsWindowAndEdgeBoundaries) {
  fault::LinkFaultState s;
  EXPECT_EQ(s.next_change_ns(0), fault::LinkFaultState::kForever);
  s.gilbert_enabled = true;
  s.gilbert_start_ns = 100;
  s.gilbert_stop_ns = 500;
  s.corrupt_enabled = true;
  s.corrupt_start_ns = 300;
  s.corrupt_stop_ns = fault::LinkFaultState::kForever;
  s.change_edges = {50, 250, 900};
  EXPECT_EQ(s.next_change_ns(0), 50);
  EXPECT_EQ(s.next_change_ns(50), 100);   // spent edges skipped
  EXPECT_EQ(s.next_change_ns(100), 250);
  EXPECT_EQ(s.next_change_ns(260), 300);
  EXPECT_EQ(s.next_change_ns(300), 500);
  EXPECT_EQ(s.next_change_ns(500), 900);
  EXPECT_EQ(s.next_change_ns(900), fault::LinkFaultState::kForever);
}

// The closed loop again, but with traffic shaped so the bottleneck services
// back-to-back bursts: three synchronized CBR probes make every service
// round a scalar head plus a batch of two, so the loss stream the fitter
// sees is produced by advance_burst() verdicts, settled lazily. The
// injected parameters must still be recovered, and every drop accounted.
TEST(FaultGilbertTest, ClosedLoopRecoversInjectedParametersThroughBatchedPath) {
  constexpr double kP = 0.02;
  constexpr double kQ = 0.25;
  constexpr std::size_t kFlows = 3;
  sim::Simulator sim(31);
  net::Network network(sim);
  net::DumbbellConfig dcfg;
  dcfg.flow_count = kFlows;
  dcfg.access_delays.assign(kFlows, Duration::millis(10));
  net::Dumbbell bell = net::build_dumbbell(network, dcfg);

  fault::FaultPlan plan;
  plan.seed = 31;
  plan.gilbert.push_back({"bottleneck.fwd", kP, kQ, 1.0, 0.0, -1.0});
  fault::FaultInjector inj(network, plan);

  tcp::CbrSource::Params cp;
  cp.packet_bytes = 400;
  cp.interval = Duration::millis(1);
  cp.duration = Duration::seconds(30);
  std::vector<std::unique_ptr<tcp::CbrSource>> srcs;
  std::vector<tcp::ProbeSink> sinks(kFlows);
  for (std::size_t f = 0; f < kFlows; ++f) {
    srcs.push_back(std::make_unique<tcp::CbrSource>(sim, static_cast<net::FlowId>(f + 1), cp));
    srcs[f]->connect(bell.fwd_routes[f], &sinks[f]);
    srcs[f]->start(TimePoint::zero());
  }
  sim.run();

  ASSERT_GT(bell.bottleneck_fwd->batches(), 0u)
      << "synchronized probes must exercise the batched service path";
  EXPECT_EQ(bell.bottleneck_fwd->batched_packets(),
            2 * bell.bottleneck_fwd->batches())
      << "each probe round batches exactly the two queued packets";

  // Serialization order at the bottleneck is round-robin over the flows
  // (same injection schedule, same access delay, FIFO queue), so the global
  // loss sequence interleaves the per-flow gap sequences.
  std::uint64_t sent = 0;
  for (const auto& s : srcs) sent += s->packets_sent();
  std::vector<bool> lost(sent, true);
  for (std::size_t f = 0; f < kFlows; ++f) {
    for (const auto& a : sinks[f].arrivals()) {
      lost[static_cast<std::size_t>(a.seq) * kFlows + f] = false;
    }
  }
  std::uint64_t lost_count = 0;
  for (const bool l : lost) lost_count += l ? 1u : 0u;
  EXPECT_EQ(inj.counters("bottleneck.fwd").gilbert_drops, lost_count);
  ASSERT_GT(lost_count, 0u);
  const analysis::GilbertFit fit = analysis::fit_gilbert(lost);
  EXPECT_NEAR(fit.p_good_to_bad, kP, 0.25 * kP);
  EXPECT_NEAR(fit.p_bad_to_good, kQ, 0.25 * kQ);
}

// ---------------------------------------------------------------------------
// Flap, stall, corrupt, duplicate semantics, driven through plan + injector.

struct ProbeRun {
  sim::Simulator sim;
  net::Network network{sim};
  net::Link* link = nullptr;
  const net::Route* route = nullptr;
  tcp::ProbeSink sink;

  explicit ProbeRun(std::uint64_t seed, std::size_t queue_cap = 256) : sim(seed) {
    // 50 ms propagation: at 10 ms probe spacing there are always ~5 packets
    // in flight, so down-edges catch a tail mid-air.
    link = network.add_link("l", 100'000'000, 50_ms,
                            std::make_unique<net::DropTailQueue>(queue_cap));
    route = network.add_route({link});
    sink.attach_clock(&sim);
  }

  /// Send `n` probes at 10 ms spacing starting at t=0 and run to quiescence.
  std::uint64_t probe(std::size_t n, const fault::FaultPlan& plan,
                      fault::FaultCounters* totals = nullptr) {
    fault::FaultInjector inj(network, plan);
    tcp::CbrSource::Params cp;
    cp.interval = Duration::millis(10);
    cp.duration = Duration::millis(10) * static_cast<std::int64_t>(n);
    tcp::CbrSource src(sim, 1, cp);
    src.connect(route, &sink);
    src.start(TimePoint::zero());
    sim.run();
    if (totals != nullptr) *totals = inj.total();
    return src.packets_sent();
  }
};

TEST(FaultFlapTest, DropPolicyDropsTheInFlightTail) {
  ProbeRun run(21);
  fault::FaultPlan plan;
  plan.flaps.push_back({"l", 1.0, 1.0, 1.0, 1, fault::DownPolicy::kDrop});
  fault::FaultCounters totals;
  const std::uint64_t sent = run.probe(300, plan, &totals);  // 3 s of probes
  ASSERT_EQ(sent, 300u);
  EXPECT_EQ(totals.down_transitions, 1u);
  // The down-edge at t=1 s catches exactly the in-flight tail: probes 95-99
  // (sent in (0.95 s, 1.0 s], still inside the 50 ms propagation window).
  // Probes enqueued during the outage sit in the router buffer — a flap
  // kills the wire, not the queue — and drain after the up-edge.
  EXPECT_EQ(totals.flap_drops, 5u);
  EXPECT_EQ(run.sink.count() + totals.flap_drops, 300u);
  for (const auto& a : run.sink.arrivals()) {
    EXPECT_TRUE(a.seq < 95 || a.seq > 99) << "in-flight probe survived the down-edge";
  }
}

TEST(FaultFlapTest, ParkPolicyReplaysEverythingAfterTheOutage) {
  ProbeRun run(22);
  fault::FaultPlan plan;
  plan.flaps.push_back({"l", 1.0, 1.0, 1.0, 1, fault::DownPolicy::kPark});
  fault::FaultCounters totals;
  const std::uint64_t sent = run.probe(300, plan, &totals);
  ASSERT_EQ(sent, 300u);
  EXPECT_EQ(run.sink.count(), 300u) << "park must not lose packets";
  EXPECT_GT(totals.parked, 0u);
  EXPECT_EQ(totals.flap_drops, 0u);
  // Arrival order stays FIFO even across the replay.
  for (std::size_t i = 1; i < run.sink.arrivals().size(); ++i) {
    EXPECT_LT(run.sink.arrivals()[i - 1].seq, run.sink.arrivals()[i].seq);
    EXPECT_LE(run.sink.arrivals()[i - 1].arrived, run.sink.arrivals()[i].arrived);
  }
}

TEST(FaultStallTest, FreezesDequeueThenDrainsWithoutLoss) {
  ProbeRun run(23);
  fault::FaultPlan plan;
  plan.stalls.push_back({"l", 1.0, 0.5, 0.0, 1});
  fault::FaultCounters totals;
  const std::uint64_t sent = run.probe(300, plan, &totals);
  ASSERT_EQ(sent, 300u);
  EXPECT_EQ(run.sink.count(), 300u) << "a stall must only delay, never drop";
  EXPECT_EQ(totals.stall_windows, 1u);
  // No probe can arrive inside the frozen window (after the pipe empties).
  TimePoint prev = TimePoint::zero();
  Duration max_gap = Duration::zero();
  for (const auto& a : run.sink.arrivals()) {
    if (prev != TimePoint::zero()) max_gap = std::max(max_gap, a.arrived - prev);
    prev = a.arrived;
  }
  EXPECT_GE(max_gap, Duration::millis(490)) << "stall window not observable";
}

TEST(FaultCorruptTest, CertainCorruptionDropsEverythingAtTheReceiver) {
  ProbeRun run(24);
  fault::FaultPlan plan;
  plan.corrupt.push_back({"l", 1.0, 0.0, 0.0, -1.0});
  fault::FaultCounters totals;
  const std::uint64_t sent = run.probe(50, plan, &totals);
  ASSERT_EQ(sent, 50u);
  EXPECT_EQ(run.sink.count(), 0u) << "corrupted packets must fail the checksum";
  EXPECT_EQ(totals.corrupted, 50u);
}

TEST(FaultCorruptTest, MultiHopChecksumDropChargesTheCorruptingLink) {
  sim::Simulator sim(26);
  net::Network network(sim);
  net::Link* first = network.add_link("first", 100'000'000, 5_ms,
                                      std::make_unique<net::DropTailQueue>(64));
  net::Link* last = network.add_link("last", 100'000'000, 5_ms,
                                     std::make_unique<net::DropTailQueue>(64));
  const net::Route* route = network.add_route({first, last});

  fault::FaultPlan plan;
  plan.corrupt.push_back({"first", 1.0, 0.0, 0.0, -1.0});
  fault::FaultInjector inj(network, plan);
  net::LossTrace trace;
  inj.set_drop_tracer(&trace);  // attached to "first"'s fault state only

  tcp::ProbeSink sink;
  sink.attach_clock(&sim);
  tcp::CbrSource::Params cp;
  cp.interval = Duration::millis(10);
  cp.duration = Duration::millis(10) * 20;
  tcp::CbrSource src(sim, 1, cp);
  src.connect(route, &sink);
  src.start(TimePoint::zero());
  sim.run();

  ASSERT_EQ(src.packets_sent(), 20u);
  EXPECT_EQ(sink.count(), 0u) << "corrupted packets must fail the checksum";
  EXPECT_EQ(inj.counters("first").corrupted, 20u);
  // The checksum drop executes at "last", which carries no fault state; the
  // loss must still land in the corrupting link's tracer stream.
  EXPECT_EQ(trace.drops().size(), 20u)
      << "injected corruption losses missing from the drop trace";
}

TEST(FaultCorruptTest, CertainDuplicationDeliversEveryPacketTwice) {
  ProbeRun run(25);
  fault::FaultPlan plan;
  plan.corrupt.push_back({"l", 0.0, 1.0, 0.0, -1.0});
  fault::FaultCounters totals;
  const std::uint64_t sent = run.probe(50, plan, &totals);
  ASSERT_EQ(sent, 50u);
  EXPECT_EQ(run.sink.count(), 100u);
  EXPECT_EQ(totals.duplicated, 50u);
}

// ---------------------------------------------------------------------------
// Satellite: forced drops must show up in the sender's own loss accounting,
// consistently with the drop trace the injector emits.

TEST(FaultSenderStatsTest, InjectedDropsDriveRetransmitStats) {
  sim::Simulator sim(31);
  net::Network network(sim);
  net::DumbbellConfig dcfg;
  dcfg.flow_count = 1;
  dcfg.access_delays.assign(1, Duration::millis(10));
  net::Dumbbell bell = net::build_dumbbell(network, dcfg);

  fault::FaultPlan plan;
  plan.seed = 31;
  plan.gilbert.push_back({"bottleneck.fwd", 0.002, 0.4, 1.0, 0.0, -1.0});
  fault::FaultInjector inj(network, plan);
  net::LossTrace trace;  // sees only the injector's forced drops
  inj.set_drop_tracer(&trace);

  tcp::TcpSender::Params sp;
  sp.total_segments = 3000;
  tcp::TcpFlow flow(sim, 1, bell.fwd_routes[0], bell.rev_routes[0], sp);
  flow.sender().enable_tx_trace();
  flow.sender().start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + 300_s);
  ASSERT_TRUE(flow.sender().completed()) << "transfer must survive the loss process";

  const tcp::SenderStats& stats = flow.sender().stats();
  ASSERT_GT(trace.drops().size(), 0u) << "plan injected no drops; test is vacuous";
  EXPECT_EQ(trace.drops().size(), inj.counters("bottleneck.fwd").gilbert_drops);
  // Reliability: every forcibly dropped segment must have been retransmitted
  // after the drop. (The converse need not hold — spurious/timeout-driven
  // retransmits are legal — so stats.retransmits can exceed the drop count.)
  EXPECT_GT(stats.retransmits + stats.fast_retransmits + stats.timeouts, 0u);
  const auto& txs = flow.sender().tx_trace();
  for (const net::DropRecord& d : trace.drops()) {
    bool repaired = false;
    for (const tcp::TxRecord& tx : txs) {
      if (tx.seq == d.seq && tx.retransmit && tx.time > d.time) {
        repaired = true;
        break;
      }
    }
    EXPECT_TRUE(repaired) << "dropped seq " << d.seq << " never retransmitted";
  }
}

// ---------------------------------------------------------------------------
// Determinism: a faulted run is still a pure function of its seeds, whether
// it executes alone or next to others on the thread pool.

core::DumbbellExperimentConfig faulted_config(std::uint64_t seed) {
  core::DumbbellExperimentConfig cfg;
  cfg.seed = seed;
  cfg.tcp_flows = 8;
  cfg.buffer_bdp_fraction = 0.25;
  cfg.duration = util::Duration::seconds(10);
  cfg.warmup = util::Duration::seconds(1);
  cfg.fault.seed = 77;
  cfg.fault.gilbert.push_back({"bottleneck.fwd", 0.001, 0.3, 1.0, 0.0, -1.0});
  cfg.fault.flaps.push_back({"bottleneck.fwd", 4.0, 0.25, 1.0, 2, fault::DownPolicy::kPark});
  return cfg;
}

TEST(FaultDeterminismTest, FaultedRunByteIdenticalSoloVsThreadPool) {
  const auto solo = core::run_dumbbell_experiment(faulted_config(42));
  ASSERT_GT(solo.fault_totals.gilbert_drops, 0u);
  ASSERT_GT(solo.fault_totals.parked, 0u);

  std::vector<core::DumbbellExperimentResult> pooled(4);
  util::ThreadPool pool(4);
  pool.parallel_for(pooled.size(), [&pooled](std::size_t i) {
    pooled[i] = core::run_dumbbell_experiment(faulted_config(40 + i));
  });
  const auto& twin = pooled[2];  // seed 42 again, run concurrently
  EXPECT_EQ(solo.total_drops, twin.total_drops);
  EXPECT_EQ(solo.fault_totals.gilbert_drops, twin.fault_totals.gilbert_drops);
  EXPECT_EQ(solo.fault_totals.parked, twin.fault_totals.parked);
  EXPECT_EQ(solo.fault_totals.down_transitions, twin.fault_totals.down_transitions);
  ASSERT_EQ(solo.drop_times_s.size(), twin.drop_times_s.size());
  EXPECT_TRUE(solo.drop_times_s.empty() ||
              std::memcmp(solo.drop_times_s.data(), twin.drop_times_s.data(),
                          solo.drop_times_s.size() * sizeof(double)) == 0)
      << "same seeds must give a byte-identical drop trace under faults";
}

}  // namespace
}  // namespace lossburst

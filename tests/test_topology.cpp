#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"

namespace lossburst::net {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

class Collector final : public Endpoint {
 public:
  explicit Collector(sim::Simulator& sim) : sim_(sim) {}
  void receive(const Packet& pkt, const PacketOptions* /*opt*/) override {
    count++;
    last_time = sim_.now();
    last = pkt;
  }
  int count = 0;
  TimePoint last_time;
  Packet last;

 private:
  sim::Simulator& sim_;
};

TEST(DumbbellTest, BuildsRequestedFlowCount) {
  sim::Simulator sim(1);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 8;
  Dumbbell bell = build_dumbbell(net, cfg);
  EXPECT_EQ(bell.fwd_routes.size(), 8u);
  EXPECT_EQ(bell.rev_routes.size(), 8u);
  EXPECT_EQ(bell.base_rtts.size(), 8u);
  ASSERT_NE(bell.bottleneck_fwd, nullptr);
  ASSERT_NE(bell.bottleneck_rev, nullptr);
}

TEST(DumbbellTest, RandomAccessDelaysWithinPaperRange) {
  sim::Simulator sim(2);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 64;
  Dumbbell bell = build_dumbbell(net, cfg);
  for (Duration rtt : bell.base_rtts) {
    // RTT = 2 * (access + bottleneck 1ms); access in [2, 200] ms.
    EXPECT_GE(rtt, 2 * (2_ms + 1_ms));
    EXPECT_LE(rtt, 2 * (200_ms + 1_ms));
  }
}

TEST(DumbbellTest, ExplicitAccessDelaysCycled) {
  sim::Simulator sim(3);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 4;
  cfg.access_delays = {10_ms, 20_ms};
  Dumbbell bell = build_dumbbell(net, cfg);
  EXPECT_EQ(bell.base_rtts[0], 2 * (10_ms + 1_ms));
  EXPECT_EQ(bell.base_rtts[1], 2 * (20_ms + 1_ms));
  EXPECT_EQ(bell.base_rtts[2], 2 * (10_ms + 1_ms));
  EXPECT_EQ(bell.base_rtts[3], 2 * (20_ms + 1_ms));
}

TEST(DumbbellTest, MeanRttAveragesFlows) {
  sim::Simulator sim(4);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 2;
  cfg.access_delays = {10_ms, 30_ms};
  Dumbbell bell = build_dumbbell(net, cfg);
  EXPECT_EQ(bell.mean_rtt(), 2 * (20_ms + 1_ms));
}

TEST(DumbbellTest, BufferSizedFromBdpFraction) {
  sim::Simulator sim(5);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 1;
  cfg.access_delays = {24_ms};  // RTT 50ms, BDP = 625 packets
  cfg.buffer_bdp_fraction = 0.5;
  Dumbbell bell = build_dumbbell(net, cfg);
  auto* q = dynamic_cast<DropTailQueue*>(&bell.bottleneck_fwd->queue());
  ASSERT_NE(q, nullptr);
  EXPECT_NEAR(static_cast<double>(q->capacity()), 312.0, 2.0);
}

TEST(DumbbellTest, ExplicitBufferOverridesFraction) {
  sim::Simulator sim(6);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 1;
  cfg.buffer_pkts = 77;
  Dumbbell bell = build_dumbbell(net, cfg);
  auto* q = dynamic_cast<DropTailQueue*>(&bell.bottleneck_fwd->queue());
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->capacity(), 77u);
}

TEST(DumbbellTest, ForwardPathHasExpectedLatency) {
  sim::Simulator sim(7);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 1;
  cfg.access_delays = {24_ms};
  Dumbbell bell = build_dumbbell(net, cfg);
  Collector sink(sim);
  Packet p;
  p.flow = 1;
  p.seq = 0;
  p.size_bytes = 1000;
  p.route = bell.fwd_routes[0];
  p.sink = &sink;
  sim.in(Duration::zero(), [&, p] { inject(Packet(p)); });
  sim.run();
  ASSERT_EQ(sink.count, 1);
  // One-way: 12ms + 1ms + 12ms propagation plus three serializations
  // (8us access + 80us bottleneck + 8us access at 1G/100M/1G).
  const Duration expected = 25_ms + Duration::micros(8 + 80 + 8);
  EXPECT_EQ(sink.last_time, TimePoint::zero() + expected);
}

TEST(DumbbellTest, QueueKindSelection) {
  sim::Simulator sim(8);
  Network net(sim);
  DumbbellConfig cfg;
  cfg.flow_count = 1;
  cfg.queue = QueueKind::kRed;
  Dumbbell bell = build_dumbbell(net, cfg);
  EXPECT_NE(dynamic_cast<RedQueue*>(&bell.bottleneck_fwd->queue()), nullptr);

  sim::Simulator sim2(9);
  Network net2(sim2);
  cfg.queue = QueueKind::kPersistentEcn;
  Dumbbell bell2 = build_dumbbell(net2, cfg);
  EXPECT_NE(dynamic_cast<PersistentEcnQueue*>(&bell2.bottleneck_fwd->queue()), nullptr);
}

TEST(MakeQueueTest, AllKindsConstruct) {
  for (QueueKind kind : {QueueKind::kDropTail, QueueKind::kRed, QueueKind::kRedEcn,
                         QueueKind::kPersistentEcn}) {
    auto q = make_queue(kind, 50, util::Rng(1));
    ASSERT_NE(q, nullptr);
    EXPECT_TRUE(q->empty());
  }
}

TEST(ThroughputMeterTest, BinsBytesPerInterval) {
  sim::Simulator sim(10);
  ThroughputMeter meter(sim, 1_s);
  meter.start();
  sim.in(100_ms, [&] { meter.on_bytes(125'000); });  // 1 Mbit in first second
  sim.in(1500_ms, [&] { meter.on_bytes(250'000); }); // 2 Mbit in second second
  sim.run_until(TimePoint::zero() + Duration::millis(2500));
  ASSERT_GE(meter.series_mbps().size(), 2u);
  EXPECT_NEAR(meter.series_mbps()[0], 1.0, 1e-9);
  EXPECT_NEAR(meter.series_mbps()[1], 2.0, 1e-9);
  EXPECT_EQ(meter.total_bytes(), 375'000u);
}

}  // namespace
}  // namespace lossburst::net

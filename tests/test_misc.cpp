// Coverage for small utilities not exercised elsewhere: the logger, CSV
// file wrapper, and trace helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "net/trace.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace lossburst {
namespace {

TEST(LogTest, LevelNames) {
  EXPECT_EQ(util::to_string(util::LogLevel::kTrace), "TRACE");
  EXPECT_EQ(util::to_string(util::LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(util::to_string(util::LogLevel::kInfo), "INFO");
  EXPECT_EQ(util::to_string(util::LogLevel::kWarn), "WARN");
  EXPECT_EQ(util::to_string(util::LogLevel::kError), "ERROR");
}

TEST(LogTest, RespectsGlobalLevel) {
  const util::LogLevel saved = util::global_log_level();
  std::ostringstream out;
  util::Logger log("test", out);

  util::set_global_log_level(util::LogLevel::kWarn);
  log.info("hidden");
  EXPECT_TRUE(out.str().empty());
  log.warn("shown ", 42);
  EXPECT_NE(out.str().find("[WARN] test: shown 42"), std::string::npos);

  util::set_global_log_level(util::LogLevel::kTrace);
  log.trace("fine-grained");
  EXPECT_NE(out.str().find("fine-grained"), std::string::npos);

  util::set_global_log_level(saved);
}

TEST(LogTest, OffSilencesEverything) {
  const util::LogLevel saved = util::global_log_level();
  std::ostringstream out;
  util::Logger log("quiet", out);
  util::set_global_log_level(util::LogLevel::kOff);
  log.error("even errors");
  EXPECT_TRUE(out.str().empty());
  util::set_global_log_level(saved);
}

TEST(CsvFileTest, WritesToDisk) {
  const std::string path = "/tmp/lossburst_csv_test.csv";
  {
    util::CsvFile file(path);
    ASSERT_TRUE(file.ok());
    file.writer().header({"a", "b"});
    file.writer().row(1, 2.5);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(LossTraceTest, DropTimesSecondsInOrder) {
  net::LossTrace trace;
  net::Packet p;
  p.flow = 1;
  p.size_bytes = 1000;
  trace.on_drop(util::TimePoint(1'000'000), p, 3);
  trace.on_drop(util::TimePoint(2'500'000), p, 4);
  const auto times = trace.drop_times_seconds();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 0.001);
  EXPECT_DOUBLE_EQ(times[1], 0.0025);
  trace.clear();
  EXPECT_TRUE(trace.drops().empty());
  EXPECT_TRUE(trace.drop_times_seconds().empty());
}

}  // namespace
}  // namespace lossburst

// Sharded engine tests (DESIGN.md §12): coordinator mechanics, the
// latency-aware partitioner, cross-shard packet semantics, and — the
// contract everything else rests on — byte-identical campaign results at
// every shard count.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/gilbert.hpp"
#include "inet/shard_campaign.hpp"
#include "inet/shard_partition.hpp"
#include "net/sharded_network.hpp"
#include "sim/shard_coordinator.hpp"
#include "tcp/cbr.hpp"
#include "util/rng.hpp"

namespace lossburst {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------------------
// Partitioner.

TEST(ShardPartition, ExactClusterCountAndBalance) {
  // 8 regions in two tight latency cliques joined by long edges.
  std::vector<inet::RegionEdge> edges;
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a + 1; b < 8; ++b) {
      const bool same = (a < 4) == (b < 4);
      edges.push_back(inet::RegionEdge{a, b, same ? 1'000'000 : 50'000'000});
    }
  }
  const auto part = inet::partition_regions(8, edges, 2);
  ASSERT_EQ(part.size(), 8u);
  EXPECT_EQ(part[0], 0u);  // normalized: region 0's cluster is shard 0
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(part[r], r < 4 ? 0u : 1u) << "region " << r;
  }
}

TEST(ShardPartition, KEqualsRegionsIsIdentity) {
  std::vector<inet::RegionEdge> edges{{0, 1, 5}, {1, 2, 3}, {0, 2, 4}};
  const auto part = inet::partition_regions(3, edges, 3);
  EXPECT_EQ(part, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ShardPartition, CapStallFallsBackToSmallestMerge) {
  // Star of latencies that would greedily glue everything onto region 0;
  // the cap forces a balanced 2-way split regardless.
  std::vector<inet::RegionEdge> edges;
  for (std::size_t b = 1; b < 6; ++b) {
    edges.push_back(inet::RegionEdge{0, b, static_cast<std::int64_t>(b)});
  }
  const auto part = inet::partition_regions(6, edges, 2);
  std::vector<std::size_t> count(2, 0);
  for (const std::size_t s : part) {
    ASSERT_LT(s, 2u);
    ++count[s];
  }
  EXPECT_EQ(count[0] + count[1], 6u);
  EXPECT_GE(count[0], 1u);
  EXPECT_GE(count[1], 1u);
}

TEST(ShardPartition, RejectsBadShardCounts) {
  EXPECT_THROW(inet::partition_regions(4, {}, 0), std::invalid_argument);
  EXPECT_THROW(inet::partition_regions(4, {}, 5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Coordinator + sharded network mechanics.

TEST(ShardCoordinator, SinglePacketCrossesTheCut) {
  net::ShardedNetwork snet(2, 7);
  net::Link* cross = snet.add_link(0, "cross", 1'000'000'000ULL, 5_ms,
                                   net::make_queue(net::QueueKind::kDropTail, 16,
                                                   util::Rng(1)));
  snet.mark_boundary(cross, 1);
  const net::Route* route = snet.add_route(net::Route{cross});
  tcp::ProbeSink sink;
  sink.attach_clock(&snet.sim(1));
  tcp::CbrSource src(snet.sim(0), 1,
                     tcp::CbrSource::Params{400, 10_ms, 100_ms});
  src.connect(route, &sink);
  src.start(TimePoint::zero());
  snet.run_until(TimePoint::zero() + 1_s);
  EXPECT_EQ(src.packets_sent(), 10u);
  ASSERT_EQ(sink.count(), 10u);
  // Arrival = send + serialization (400 B at 1 Gbps = 3.2 us) + 5 ms.
  EXPECT_EQ(sink.arrivals()[0].arrived.ns(), 3'200 + Duration(5_ms).ns());
  EXPECT_GT(snet.coordinator().epochs(), 0u);
  EXPECT_EQ(snet.coordinator().lookahead().ns(), Duration(5_ms).ns());
}

TEST(ShardCoordinator, BoundaryNeedsPositiveDelay) {
  net::ShardedNetwork snet(2, 7);
  net::Link* zero = snet.add_link(0, "zero", 1'000'000'000ULL, Duration(0),
                                  net::make_queue(net::QueueKind::kDropTail, 16,
                                                  util::Rng(1)));
  EXPECT_THROW(snet.mark_boundary(zero, 1), std::invalid_argument);
}

TEST(ShardCoordinator, RouteAcrossUnmarkedCutIsRejected) {
  net::ShardedNetwork snet(2, 7);
  net::Link* a = snet.add_link(0, "a", 1'000'000'000ULL, 1_ms,
                               net::make_queue(net::QueueKind::kDropTail, 16,
                                               util::Rng(1)));
  net::Link* b = snet.add_link(1, "b", 1'000'000'000ULL, 1_ms,
                               net::make_queue(net::QueueKind::kDropTail, 16,
                                               util::Rng(2)));
  EXPECT_THROW(snet.add_route(net::Route{a, b}), std::logic_error);
}

TEST(ShardCoordinator, RepeatedSlicesMatchOneRun) {
  // Sliced run_until (the benchmark pattern) must agree with a single run.
  const auto run = [](bool sliced) {
    net::ShardedNetwork snet(2, 11);
    net::Link* cross = snet.add_link(0, "cross", 1'000'000'000ULL, 2_ms,
                                     net::make_queue(net::QueueKind::kDropTail, 16,
                                                     util::Rng(1)));
    snet.mark_boundary(cross, 1);
    const net::Route* route = snet.add_route(net::Route{cross});
    tcp::ProbeSink sink;
    sink.attach_clock(&snet.sim(1));
    tcp::CbrSource src(snet.sim(0), 1,
                       tcp::CbrSource::Params{400, 3_ms, 90_ms});
    src.connect(route, &sink);
    src.start(TimePoint::zero());
    if (sliced) {
      for (int i = 1; i <= 10; ++i) {
        snet.run_until(TimePoint::zero() + 20_ms * i);
      }
    } else {
      snet.run_until(TimePoint::zero() + 200_ms);
    }
    std::vector<std::int64_t> times;
    for (const auto& a : sink.arrivals()) times.push_back(a.arrived.ns());
    return times;
  };
  EXPECT_EQ(run(true), run(false));
}

// ---------------------------------------------------------------------------
// Campaign byte-identity across shard counts (the tentpole contract).

TEST(ShardCampaign, ByteIdenticalAcrossShardCounts) {
  inet::ShardCampaignConfig cfg;
  cfg.seed = 77;
  cfg.regions = 8;
  cfg.sites = 120;
  cfg.flows = 48;
  cfg.onoff_per_region = 2;
  cfg.probe_interval = 20_ms;
  cfg.duration = 2_s;
  cfg.fault_backbone = true;

  cfg.shards = 1;
  const auto base = inet::run_shard_campaign(cfg);
  EXPECT_GT(base.probes_sent, 0u);
  EXPECT_GT(base.probes_received, 0u);
  for (const std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    cfg.shards = k;
    const auto run = inet::run_shard_campaign(cfg);
    EXPECT_EQ(run.digest, base.digest) << "shards = " << k;
    EXPECT_EQ(run.probes_sent, base.probes_sent) << "shards = " << k;
    EXPECT_EQ(run.probes_received, base.probes_received) << "shards = " << k;
    EXPECT_EQ(run.fault_totals.gilbert_drops, base.fault_totals.gilbert_drops)
        << "shards = " << k;
    ASSERT_EQ(run.flows.size(), base.flows.size());
    for (std::size_t f = 0; f < run.flows.size(); ++f) {
      EXPECT_EQ(run.flows[f].loss_indicator, base.flows[f].loss_indicator)
          << "shards = " << k << " flow " << f;
    }
    EXPECT_GT(run.epochs, 0u) << "shards = " << k;
  }
}

TEST(ShardCampaign, GilbertRecoveryIsShardCountIndependent) {
  // A faulted backbone that is a shard boundary at K > 1: the fitter must
  // recover the injected parameters from the probe loss sequence, and the
  // fit must not depend on the shard count (the loss indicators are
  // byte-identical, so the fits are literally equal).
  inet::ShardCampaignConfig cfg;
  cfg.seed = 99;
  cfg.regions = 4;
  cfg.sites = 64;
  cfg.flows = 64;
  cfg.onoff_per_region = 0;
  cfg.probe_interval = 5_ms;
  cfg.duration = 5_s;
  cfg.fault_backbone = true;
  cfg.gilbert_p = 0.05;
  cfg.gilbert_q = 0.4;

  analysis::GilbertFit fit_at[3];
  std::size_t i = 0;
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    cfg.shards = k;
    const auto run = inet::run_shard_campaign(cfg);
    // Pool the loss sequences of every flow crossing the faulted link, in
    // flow order — an approximation of the chain's packet order that is
    // identical at every shard count.
    std::vector<bool> pooled;
    std::uint64_t crossing = 0;
    for (const auto& flow : run.flows) {
      if (!flow.crosses_fault_link) continue;
      ++crossing;
      pooled.insert(pooled.end(), flow.loss_indicator.begin(),
                    flow.loss_indicator.end());
    }
    ASSERT_GT(crossing, 0u) << "shards = " << k;
    ASSERT_GT(pooled.size(), 1000u) << "shards = " << k;
    fit_at[i++] = analysis::fit_gilbert(pooled);
  }
  EXPECT_DOUBLE_EQ(fit_at[0].p_good_to_bad, fit_at[1].p_good_to_bad);
  EXPECT_DOUBLE_EQ(fit_at[0].p_bad_to_good, fit_at[1].p_bad_to_good);
  EXPECT_DOUBLE_EQ(fit_at[0].p_good_to_bad, fit_at[2].p_good_to_bad);
  EXPECT_DOUBLE_EQ(fit_at[0].p_bad_to_good, fit_at[2].p_bad_to_good);
  // Loose recovery bounds: the probe stream subsamples the chain (background
  // packets also advance it), so expect the right order of magnitude, not
  // the exact parameters.
  EXPECT_GT(fit_at[0].loss_rate, 0.01);
  EXPECT_LT(fit_at[0].loss_rate, 0.5);
}

// ---------------------------------------------------------------------------
// Randomized-partition differential: a direct two-region topology built on
// ShardedNetwork with randomized shard assignments must reproduce the K=1
// run exactly, whatever the partition.

TEST(ShardDifferential, RandomPartitionsMatchSerial) {
  const auto run = [](std::size_t shards, std::uint64_t seed,
                      const std::vector<std::size_t>& region_shard) {
    net::ShardedNetwork snet(shards, 5);
    // Two regions, four sites each; full backbone mesh between regions.
    const Duration bb_delay = 12_ms;
    net::Link* ab = snet.add_link(region_shard[0], "bb.a.b", 1'000'000'000ULL,
                                  bb_delay,
                                  net::make_queue(net::QueueKind::kDropTail, 64,
                                                  util::Rng(2)));
    net::Link* ba = snet.add_link(region_shard[1], "bb.b.a", 1'000'000'000ULL,
                                  bb_delay,
                                  net::make_queue(net::QueueKind::kDropTail, 64,
                                                  util::Rng(3)));
    if (region_shard[0] != region_shard[1]) {
      snet.mark_boundary(ab, region_shard[1]);
      snet.mark_boundary(ba, region_shard[0]);
    }
    std::vector<net::Link*> up(8);
    std::vector<net::Link*> down(8);
    for (std::size_t s = 0; s < 8; ++s) {
      const std::size_t shard = region_shard[s % 2];
      up[s] = snet.add_link(shard, "up." + std::to_string(s), 1'000'000'000ULL,
                            Duration::micros(300 + 40 * static_cast<std::int64_t>(s)),
                            net::make_queue(net::QueueKind::kDropTail, 32,
                                            util::Rng(10 + s)));
      down[s] = snet.add_link(shard, "down." + std::to_string(s),
                              1'000'000'000ULL,
                              Duration::micros(500 + 60 * static_cast<std::int64_t>(s)),
                              net::make_queue(net::QueueKind::kDropTail, 32,
                                              util::Rng(20 + s)));
    }
    // Probe flows between random pairs, both directions across the cut.
    util::Rng rng(seed);
    std::vector<std::unique_ptr<tcp::CbrSource>> sources;
    std::vector<std::unique_ptr<tcp::ProbeSink>> sinks;
    for (std::size_t f = 0; f < 12; ++f) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, 7));
      std::size_t b = a;
      while (b == a || b % 2 == a % 2) {
        b = static_cast<std::size_t>(rng.uniform_int(0, 7));
      }
      net::Route hops{up[a], a % 2 == 0 ? ab : ba, down[b]};
      const net::Route* route = snet.add_route(std::move(hops));
      sinks.push_back(std::make_unique<tcp::ProbeSink>());
      sinks.back()->attach_clock(&snet.sim(region_shard[b % 2]));
      sources.push_back(std::make_unique<tcp::CbrSource>(
          snet.sim(region_shard[a % 2]), static_cast<net::FlowId>(f),
          tcp::CbrSource::Params{400, Duration::micros(700 + 90 * static_cast<std::int64_t>(f)),
                                 300_ms}));
      sources.back()->connect(route, sinks.back().get());
      sources.back()->start(TimePoint(static_cast<std::int64_t>(f) * 137'000));
    }
    snet.run_until(TimePoint::zero() + 1_s);
    std::vector<std::int64_t> log;
    for (const auto& sink : sinks) {
      for (const auto& a : sink->arrivals()) {
        log.push_back(a.arrived.ns());
        log.push_back(static_cast<std::int64_t>(a.seq));
      }
    }
    return log;
  };

  util::Rng meta(0xd1ff);
  const auto serial = run(1, 42, {0, 0});
  ASSERT_FALSE(serial.empty());
  for (int trial = 0; trial < 4; ++trial) {
    const std::size_t shards = 2 + static_cast<std::size_t>(meta.uniform_int(0, 1));
    std::vector<std::size_t> assign{
        static_cast<std::size_t>(meta.uniform_int(0, static_cast<std::int64_t>(shards) - 1)),
        0};
    assign[1] = (assign[0] + 1) % shards;  // regions always split
    EXPECT_EQ(run(shards, 42, assign), serial)
        << "trial " << trial << " shards " << shards << " assign {" << assign[0]
        << "," << assign[1] << "}";
  }
}

}  // namespace
}  // namespace lossburst

// SACK scoreboard unit tests plus end-to-end SACK recovery behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "tcp/sack.hpp"

namespace lossburst::tcp {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

TEST(SackScoreboardTest, PipeCountsTransmissions) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 5; ++s) sb.on_transmit(s, false);
  EXPECT_EQ(sb.pipe(), 5);
}

TEST(SackScoreboardTest, SackBlockDrainsPipe) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 10; ++s) sb.on_transmit(s, false);
  EXPECT_EQ(sb.on_sack_block(4, 8), 4u);
  EXPECT_EQ(sb.pipe(), 6);
  EXPECT_TRUE(sb.is_sacked(5));
  EXPECT_FALSE(sb.is_sacked(3));
  // Re-reporting the same block changes nothing.
  EXPECT_EQ(sb.on_sack_block(4, 8), 0u);
  EXPECT_EQ(sb.pipe(), 6);
}

TEST(SackScoreboardTest, CumackRetiresSegments) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 10; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(5, 7);
  sb.on_cumack(0, 7);
  // 0..4 were in the pipe (5 packets); 5,6 already drained by SACK.
  EXPECT_EQ(sb.pipe(), 3);
  EXPECT_EQ(sb.sacked_count(), 0u);
}

TEST(SackScoreboardTest, DeclareLossesBelowThirdHighestSack) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 10; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(7, 10);  // 3 sacked above the holes
  EXPECT_EQ(sb.declare_losses(0), 7u);  // 0..6 lost
  EXPECT_TRUE(sb.is_lost(0));
  EXPECT_TRUE(sb.is_lost(6));
  EXPECT_FALSE(sb.is_lost(7));
  // Pipe: 10 sent - 3 sacked - 7 lost = 0.
  EXPECT_EQ(sb.pipe(), 0);
}

TEST(SackScoreboardTest, NoLossDeclaredWithFewSacks) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 5; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(3, 5);  // only 2 sacked
  EXPECT_EQ(sb.declare_losses(0), 0u);
  EXPECT_FALSE(sb.has_losses());
}

TEST(SackScoreboardTest, NextHoleSkipsRetransmitted) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 10; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(7, 10);
  sb.declare_losses(0);
  ASSERT_TRUE(sb.next_hole(0).has_value());
  EXPECT_EQ(*sb.next_hole(0), 0u);
  sb.on_transmit(0, true);  // retransmit hole 0
  EXPECT_EQ(*sb.next_hole(0), 1u);
  EXPECT_EQ(sb.pipe(), 1);  // the retransmission is in flight
}

TEST(SackScoreboardTest, SackOfRetransmissionDrainsPipe) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 10; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(7, 10);
  sb.declare_losses(0);
  sb.on_transmit(2, true);
  EXPECT_EQ(sb.pipe(), 1);
  sb.on_sack_block(2, 3);  // the retransmission arrives and is SACKed
  EXPECT_EQ(sb.pipe(), 0);
  EXPECT_FALSE(sb.is_lost(2));
}

TEST(SackScoreboardTest, CumackRetiresRetransmissionInFlight) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 6; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(3, 6);
  sb.declare_losses(0);   // 0..2 lost, pipe 0
  sb.on_transmit(0, true);
  sb.on_transmit(1, true);
  EXPECT_EQ(sb.pipe(), 2);
  sb.on_cumack(0, 3);  // retransmissions 0,1 delivered, 2 lost again? no: all below 3 retired
  EXPECT_EQ(sb.pipe(), 0);
  EXPECT_FALSE(sb.has_losses());
}

TEST(SackScoreboardTest, ResetClearsEverything) {
  SackScoreboard sb;
  for (net::SeqNum s = 0; s < 8; ++s) sb.on_transmit(s, false);
  sb.on_sack_block(5, 8);
  sb.declare_losses(0);
  sb.reset();
  EXPECT_EQ(sb.pipe(), 0);
  EXPECT_EQ(sb.sacked_count(), 0u);
  EXPECT_FALSE(sb.has_losses());
}

// ---------------------------------------------------------------- end-to-end

struct Harness {
  sim::Simulator sim;
  net::Network net{sim};
  net::Dumbbell bell;
  Harness(std::uint64_t seed, std::size_t flows, Duration access, double buf = 1.0)
      : sim(seed) {
    net::DumbbellConfig cfg;
    cfg.flow_count = flows;
    cfg.access_delays.assign(flows, access);
    cfg.buffer_bdp_fraction = buf;
    bell = net::build_dumbbell(net, cfg);
  }
};

TcpFlow make_sack_flow(Harness& h, net::FlowId id, std::uint64_t total_segments) {
  TcpSender::Params sp;
  sp.sack_enabled = true;
  sp.total_segments = total_segments;
  TcpReceiver::Params rp;
  rp.sack_enabled = true;
  return TcpFlow(h.sim, id, h.bell.fwd_routes[id - 1], h.bell.rev_routes[id - 1], sp, rp);
}

TEST(SackEndToEndTest, TransfersReliably) {
  Harness h(1, 1, 24_ms);
  TcpFlow flow = make_sack_flow(h, 1, 5000);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 60_s);
  EXPECT_TRUE(flow.sender().completed());
  EXPECT_EQ(flow.receiver().rcv_next(), 5000u);
  EXPECT_EQ(flow.receiver().bytes_received(), 5000u * net::kMssBytes);
}

TEST(SackEndToEndTest, RecoversMultiLossWindowAlmostWithoutTimeouts) {
  // Slow-start overshoot drops hundreds of packets from one window; SACK
  // repairs them hole-parallel. An RTO can still occur when a
  // *retransmission* dies in the same full queue, but the NewReno-style
  // cascade of timeouts must not happen.
  Harness h(2, 1, 24_ms, 0.5);
  TcpFlow flow = make_sack_flow(h, 1, 30000);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 120_s);
  EXPECT_TRUE(flow.sender().completed());
  EXPECT_GT(flow.sender().stats().retransmits, 50u);  // the burst was real
  EXPECT_LE(flow.sender().stats().timeouts, 2u);
}

TEST(SackEndToEndTest, FasterThanNewRenoUnderBurstLoss) {
  auto run = [](bool sack) {
    Harness h(3, 1, 24_ms, 0.5);
    TcpSender::Params sp;
    sp.sack_enabled = sack;
    sp.total_segments = 30000;
    TcpReceiver::Params rp;
    rp.sack_enabled = sack;
    TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp, rp);
    flow.sender().start(TimePoint::zero());
    h.sim.run_until(TimePoint::zero() + 300_s);
    EXPECT_TRUE(flow.sender().completed());
    return flow.sender().completion_time().seconds();
  };
  const double with_sack = run(true);
  const double without = run(false);
  EXPECT_LT(with_sack, without);
}

TEST(SackEndToEndTest, PacedSackWorks) {
  Harness h(4, 1, 24_ms, 0.5);
  TcpSender::Params sp;
  sp.sack_enabled = true;
  sp.emission = EmissionMode::kPaced;
  sp.pacing_rtt_hint = 50_ms;
  sp.total_segments = 10000;
  TcpReceiver::Params rp;
  rp.sack_enabled = true;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp, rp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 300_s);
  EXPECT_TRUE(flow.sender().completed());
  EXPECT_EQ(flow.receiver().rcv_next(), 10000u);
}

TEST(SackEndToEndTest, ReceiverReportsBlocks) {
  sim::Simulator sim(5);
  TcpReceiver::Params rp;
  rp.sack_enabled = true;
  TcpReceiver recv(sim, 1, rp);
  class AckSink final : public net::Endpoint {
   public:
    net::Packet last;
    net::PacketOptions opt;  // copy of the side-table options, if any
    void receive(const net::Packet& p, const net::PacketOptions* o) override {
      last = p;
      opt = o != nullptr ? *o : net::PacketOptions{};
    }
  } sink;
  static const net::Route kEmpty;
  recv.connect(&kEmpty, &sink);

  auto data = [&](net::SeqNum s) {
    net::Packet p;
    p.flow = 1;
    p.seq = s;
    p.size_bytes = net::kDataPacketBytes;
    recv.receive(p, nullptr);
  };
  data(0);
  EXPECT_EQ(sink.opt.sack_count, 0u);  // no holes
  data(2);  // hole at 1
  ASSERT_EQ(sink.opt.sack_count, 1u);
  EXPECT_EQ(sink.opt.sack[0].begin, 2u);
  EXPECT_EQ(sink.opt.sack[0].end, 3u);
  data(5);  // holes at 1, 3, 4
  ASSERT_EQ(sink.opt.sack_count, 2u);
  // Most recent block (containing 5) first.
  EXPECT_EQ(sink.opt.sack[0].begin, 5u);
  EXPECT_EQ(sink.opt.sack[1].begin, 2u);
  data(3);
  ASSERT_EQ(sink.opt.sack_count, 2u);
  EXPECT_EQ(sink.opt.sack[0].begin, 2u);  // run 2..4 contains newest seq 3
  EXPECT_EQ(sink.opt.sack[0].end, 4u);
  data(1);  // fills the first hole; 2..3 delivered, 5 still buffered
  EXPECT_EQ(sink.last.ack_seq, 4u);
  ASSERT_EQ(sink.opt.sack_count, 1u);
  EXPECT_EQ(sink.opt.sack[0].begin, 5u);
}

}  // namespace
}  // namespace lossburst::tcp

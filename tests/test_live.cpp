// Live telemetry service, sim side (DESIGN.md §13): broadcast snapshot
// ring, decimation chain, top-flows aggregator, snapshot publisher, and the
// flight-recorder harvest cursor — including the gating/wraparound contract
// (gated record kinds never appear in streamed intervals; ring wrap is
// counted as loss, never double-counted) and the profiler's work-unit
// attribution equivalence between scalar and burst-batched link dispatch.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "obs/live/decimator.hpp"
#include "obs/live/publisher.hpp"
#include "obs/live/recorder_cursor.hpp"
#include "obs/live/snapshot.hpp"
#include "obs/live/spsc_ring.hpp"
#include "obs/live/topflows.hpp"
#include "obs/metrics.hpp"
#include "obs/tags.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_ring.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace lossburst;
using namespace lossburst::util::literals;
using obs::live::SnapKind;
using obs::live::SnapshotRec;
using obs::live::SnapshotRing;
using util::Duration;
using util::TimePoint;

// ---------------------------------------------------------------------------
// Broadcast snapshot ring

SnapshotRec rec_at(std::int64_t t, double v0 = 0.0) {
  SnapshotRec r;
  r.t_ns = t;
  r.kind = static_cast<std::uint32_t>(SnapKind::kMetric);
  r.v0 = v0;
  return r;
}

TEST(SnapshotRingTest, DeliversInPublicationOrder) {
  SnapshotRing ring;
  ring.configure(8);
  SnapshotRing::Cursor c = ring.make_cursor();
  for (std::int64_t i = 0; i < 5; ++i) ring.publish(rec_at(i));

  SnapshotRec out;
  for (std::int64_t i = 0; i < 5; ++i) {
    ASSERT_EQ(ring.poll(c, out), SnapshotRing::Poll::kOk);
    EXPECT_EQ(out.t_ns, i);
  }
  EXPECT_EQ(ring.poll(c, out), SnapshotRing::Poll::kEmpty);
  EXPECT_EQ(c.dropped, 0u);
}

TEST(SnapshotRingTest, LappedReaderLosesOnlyItsOwnSamples) {
  SnapshotRing ring;
  ring.configure(4);
  SnapshotRing::Cursor slow = ring.make_cursor();
  for (std::int64_t i = 0; i < 10; ++i) ring.publish(rec_at(i));

  // The writer never waited: all ten publications landed.
  EXPECT_EQ(ring.published(), 10u);

  // The slow reader resumes at the oldest publication still guaranteed
  // stable (head - capacity + 1 = 7) and the gap is charged to it alone.
  SnapshotRec out;
  ASSERT_EQ(ring.poll(slow, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 7);
  EXPECT_EQ(slow.dropped, 7u);
  ASSERT_EQ(ring.poll(slow, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 8);
  ASSERT_EQ(ring.poll(slow, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 9);
  EXPECT_EQ(ring.poll(slow, out), SnapshotRing::Poll::kEmpty);
  EXPECT_EQ(slow.dropped, 7u);

  // A cursor made now starts at the same oldest-guaranteed point with a
  // clean drop counter: earlier overwrites were never "its" samples.
  SnapshotRing::Cursor fresh = ring.make_cursor();
  ASSERT_EQ(ring.poll(fresh, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 7);
  EXPECT_EQ(fresh.dropped, 0u);
}

TEST(SnapshotRingTest, CapacityRoundsUpToPowerOfTwo) {
  SnapshotRing ring;
  ring.configure(5);
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(SnapshotRingTest, CursorAttachedMidWrapStartsAtOldestGuaranteed) {
  SnapshotRing ring;
  ring.configure(4);
  // Writer is mid-way through its second lap: head = 6, slots hold 2..5.
  for (std::int64_t i = 0; i < 6; ++i) ring.publish(rec_at(i));

  // Publication head - capacity = 2 is still physically intact, but the
  // writer's next publish lands on its slot; make_cursor starts one past it
  // so an attach racing the writer can never charge itself phantom drops.
  SnapshotRing::Cursor c = ring.make_cursor();
  SnapshotRec out;
  ASSERT_EQ(ring.poll(c, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 3);
  ASSERT_EQ(ring.poll(c, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 4);
  ASSERT_EQ(ring.poll(c, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 5);
  EXPECT_EQ(ring.poll(c, out), SnapshotRing::Poll::kEmpty);
  EXPECT_EQ(c.dropped, 0u);
}

TEST(SnapshotRingTest, ReaderExactlyOneLapBehindStillReadsTheSlot) {
  SnapshotRing ring;
  ring.configure(4);
  ring.publish(rec_at(0));
  SnapshotRing::Cursor c;  // at publication 0

  // Fill the remaining slots and stop with head - c.next == capacity: slot 0
  // has not been overwritten yet (the writer's NEXT publish would), so the
  // boundary lag delivers rather than drops.
  for (std::int64_t i = 1; i < 4; ++i) ring.publish(rec_at(i));
  SnapshotRec out;
  ASSERT_EQ(ring.poll(c, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 0);
  EXPECT_EQ(c.dropped, 0u);

  // One more publication reuses slot 0; a cursor still parked there now
  // skips exactly the overwritten prefix.
  SnapshotRing::Cursor late;  // at publication 0, one past the boundary
  ring.publish(rec_at(4));
  ASSERT_EQ(ring.poll(late, out), SnapshotRing::Poll::kOk);
  EXPECT_EQ(out.t_ns, 2);  // oldest guaranteed = head - capacity + 1
  EXPECT_EQ(late.dropped, 2u);
}

TEST(SnapshotRingTest, LappedTwiceChargesEveryMissedPublicationExactly) {
  SnapshotRing ring;
  ring.configure(4);
  SnapshotRing::Cursor c = ring.make_cursor();

  // First lapping: nine publications overwrite the reader's whole window.
  for (std::int64_t i = 0; i < 9; ++i) ring.publish(rec_at(i));
  SnapshotRec out;
  std::uint64_t delivered = 0;
  while (ring.poll(c, out) == SnapshotRing::Poll::kOk) ++delivered;
  EXPECT_EQ(delivered, 3u);  // 6, 7, 8
  EXPECT_EQ(c.dropped, 6u);

  // Second lapping of the same cursor: the new gap is charged on top, and
  // nothing already charged is counted again.
  for (std::int64_t i = 9; i < 18; ++i) ring.publish(rec_at(i));
  while (ring.poll(c, out) == SnapshotRing::Poll::kOk) ++delivered;
  EXPECT_EQ(delivered, 6u);  // + 15, 16, 17
  EXPECT_EQ(c.dropped, 12u);

  // Conservation: every publication was either delivered or charged.
  EXPECT_EQ(delivered + c.dropped, ring.published());
}

// ---------------------------------------------------------------------------
// Decimation chain

TEST(DecimatorTest, FoldsTenRawSamplesIntoLevelOne) {
  obs::live::Decimator dec;
  dec.configure(1);
  std::uint32_t mask = 0;
  for (int i = 1; i <= 10; ++i) {
    dec.feed(0, static_cast<double>(i));
    mask = dec.end_interval();
    if (i < 10) {
      EXPECT_EQ(mask, 0u) << "level completed early at tick " << i;
    }
  }
  ASSERT_EQ(mask & (1u << 1), 1u << 1);
  const obs::live::Decimator::Sample& s = dec.sample(1, 0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_EQ(s.sum, 55.0);
  EXPECT_EQ(s.last, 10.0);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(DecimatorTest, LevelTwoFoldsFromLevelOneNotRawSamples) {
  obs::live::Decimator dec;
  dec.configure(1);
  std::uint32_t mask = 0;
  int level1_completions = 0;
  for (int i = 0; i < 100; ++i) {
    dec.feed(0, 2.0);
    mask = dec.end_interval();
    if ((mask & (1u << 1)) != 0) ++level1_completions;
  }
  EXPECT_EQ(level1_completions, 10);
  ASSERT_EQ(mask & (1u << 2), 1u << 2);  // tick 100 completes level 2
  const obs::live::Decimator::Sample& s = dec.sample(2, 0);
  EXPECT_EQ(s.count, 100u);  // count is base intervals covered
  EXPECT_EQ(s.sum, 200.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(DecimatorTest, SpanIntervalsMatchFoldProducts) {
  EXPECT_EQ(obs::live::Decimator::span_intervals(0), 1u);
  EXPECT_EQ(obs::live::Decimator::span_intervals(1), 10u);
  EXPECT_EQ(obs::live::Decimator::span_intervals(2), 100u);
  EXPECT_EQ(obs::live::Decimator::span_intervals(3), 600u);
}

// ---------------------------------------------------------------------------
// Top flows

struct FlowCounters {
  obs::FlowSample cum;
  static obs::FlowSample read(const void* ctx) {
    return static_cast<const FlowCounters*>(ctx)->cum;
  }
};

TEST(TopFlowsTest, RanksByWindowBytesWithFlowIdTieBreak) {
  obs::FlowTable table;
  FlowCounters f1, f2, f3;
  int owner = 0;
  table.add(1, FlowCounters::read, &f1, &owner);
  table.add(2, FlowCounters::read, &f2, &owner);
  table.add(3, FlowCounters::read, &f3, &owner);

  obs::live::TopFlows top;
  top.freeze({&table});
  ASSERT_EQ(top.flows(), 3u);

  f1.cum.bytes = 100;
  f2.cum.bytes = 900;
  f3.cum.bytes = 900;  // ties with flow 2: lower id must rank first
  top.tick();
  ASSERT_EQ(top.top_count(), 3u);
  EXPECT_EQ(top.top(0).flow, 2u);
  EXPECT_EQ(top.top(1).flow, 3u);
  EXPECT_EQ(top.top(2).flow, 1u);
  EXPECT_EQ(top.top(0).window.bytes, 900u);
}

TEST(TopFlowsTest, WindowSlidesOldDeltasOut) {
  obs::FlowTable table;
  FlowCounters f;
  int owner = 0;
  table.add(7, FlowCounters::read, &f, &owner);

  obs::live::TopFlows top;
  top.freeze({&table});

  f.cum.bytes = 500;  // one burst in the first interval, then silence
  top.tick();
  EXPECT_EQ(top.top(0).window.bytes, 500u);
  for (std::size_t i = 0; i + 1 < obs::live::TopFlows::kWindow; ++i) {
    top.tick();
    EXPECT_EQ(top.top(0).window.bytes, 500u) << "expired early at tick " << i;
  }
  top.tick();  // the burst's interval slides out of the window
  EXPECT_EQ(top.top(0).window.bytes, 0u);
}

// ---------------------------------------------------------------------------
// Publisher

std::vector<SnapshotRec> drain(const obs::live::LivePublisher& pub,
                               SnapshotRing::Cursor& c) {
  std::vector<SnapshotRec> out;
  SnapshotRec rec;
  while (pub.ring().poll(c, rec) == SnapshotRing::Poll::kOk) out.push_back(rec);
  return out;
}

TEST(LivePublisherTest, StreamsCounterDeltasUnderPrefixedSchema) {
  obs::Telemetry tel;
  std::uint64_t hits = 40;
  int owner = 0;
  tel.registry().add_counter("q.hits", &hits, &owner);

  obs::live::LivePublisher pub;
  pub.attach(tel, "s0.");
  pub.freeze(0, 100'000'000);
  ASSERT_TRUE(pub.frozen());
  ASSERT_EQ(pub.schema().size(), 1u);
  EXPECT_EQ(pub.schema()[0].name, "s0.q.hits");

  SnapshotRing::Cursor c = pub.make_cursor();
  hits = 52;
  pub.publish(100'000'000);
  const std::vector<SnapshotRec> batch = drain(pub, c);

  // One raw metric record (delta vs the value at freeze) then the mark.
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].kind, static_cast<std::uint32_t>(SnapKind::kMetric));
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[0].aux, 0u);
  EXPECT_EQ(batch[0].v0, 12.0);
  EXPECT_EQ(batch.back().kind, static_cast<std::uint32_t>(SnapKind::kMark));
  EXPECT_EQ(batch.back().aux, 0u);
  EXPECT_EQ(pub.intervals_published(), 1u);

  hits = 60;
  pub.publish(200'000'000);
  const std::vector<SnapshotRec> batch2 = drain(pub, c);
  ASSERT_EQ(batch2.size(), 2u);
  EXPECT_EQ(batch2[0].v0, 8.0);  // delta vs the previous interval, not freeze
}

TEST(LivePublisherTest, EveryIntervalEndsWithItsMark) {
  obs::Telemetry tel;
  std::uint64_t v = 0;
  int owner = 0;
  tel.registry().add_counter("c", &v, &owner);

  obs::live::LivePublisher pub;
  pub.attach(tel);
  pub.freeze(0, 1'000'000);
  SnapshotRing::Cursor c = pub.make_cursor();
  for (int i = 1; i <= 25; ++i) {
    v += static_cast<std::uint64_t>(i);
    pub.publish(i * 1'000'000);
  }
  const std::vector<SnapshotRec> all = drain(pub, c);
  std::uint64_t next_mark = 0;
  for (const SnapshotRec& r : all) {
    if (r.kind != static_cast<std::uint32_t>(SnapKind::kMark)) continue;
    EXPECT_EQ(r.aux, next_mark);  // marks are dense and ordered
    ++next_mark;
  }
  EXPECT_EQ(next_mark, 25u);
  EXPECT_EQ(pub.intervals_published(), 25u);
  // The last record of the stream is the last interval's mark.
  EXPECT_EQ(all.back().kind, static_cast<std::uint32_t>(SnapKind::kMark));
}

// ---------------------------------------------------------------------------
// Flight-recorder gating x streaming (the satellite contract): kinds masked
// off by per-kind gating are never written, so they must never appear in a
// streamed interval; ring wraparound shows up as counted loss, never as
// double-counted records.

// Write through the instrumentation-site idiom, exactly as components do.
void record_gated(obs::Telemetry& t, obs::RecordKind k, std::int64_t t_ns) {
  if (obs::FlightRecorder* rec = obs::trace_recorder(&t, k)) {
    rec->record(k, t_ns, 0, 0, 0);
  }
}

TEST(LiveTraceStreamTest, GatedKindsNeverAppearInStreamedIntervals) {
  obs::Telemetry tel;
  tel.recorder().configure(64, obs::kind_bit(obs::RecordKind::kPktDrop));

  obs::live::LivePublisher pub;
  pub.attach(tel);
  pub.freeze(0, 1'000'000);
  SnapshotRing::Cursor c = pub.make_cursor();

  for (int i = 0; i < 5; ++i) {
    record_gated(tel, obs::RecordKind::kPktDrop, i);
    record_gated(tel, obs::RecordKind::kPktEnqueue, i);  // masked off
    record_gated(tel, obs::RecordKind::kPktDequeue, i);  // masked off
  }
  pub.publish(1'000'000);

  bool saw_drop_counts = false;
  for (const SnapshotRec& r : drain(pub, c)) {
    if (r.kind != static_cast<std::uint32_t>(SnapKind::kTraceKinds)) continue;
    EXPECT_EQ(r.id, static_cast<std::uint32_t>(obs::RecordKind::kPktDrop))
        << "a gated kind leaked into the stream";
    EXPECT_EQ(r.v0, 5.0);
    saw_drop_counts = true;
  }
  if (obs::kTraceCompiledIn) {
    EXPECT_TRUE(saw_drop_counts);
  }
}

TEST(LiveTraceStreamTest, RingWrapCountsLossNeverDoubleCounts) {
  obs::Telemetry tel;
  tel.recorder().configure(8, obs::kAllKinds);  // tiny ring, will wrap

  obs::live::LivePublisher pub;
  pub.attach(tel);
  pub.freeze(0, 1'000'000);
  SnapshotRing::Cursor c = pub.make_cursor();

  // Interval 1: 20 records through an 8-slot ring. The per-kind counts come
  // from the recorder's monotone write totals, so all 20 are counted even
  // though 12 were overwritten; the drops record separately reports those 12
  // as the part of the interval the post-mortem ring no longer covers.
  for (int i = 0; i < 20; ++i) {
    tel.recorder().record(obs::RecordKind::kPktDrop, i, 0, 0, 0);
  }
  pub.publish(1'000'000);
  double counted = 0.0, lost = 0.0;
  for (const SnapshotRec& r : drain(pub, c)) {
    if (r.kind == static_cast<std::uint32_t>(SnapKind::kTraceKinds)) counted += r.v0;
    if (r.kind == static_cast<std::uint32_t>(SnapKind::kTraceDrops)) lost += r.v0;
  }
  if (obs::kTraceCompiledIn) {
    EXPECT_EQ(counted, 20.0);  // exact despite the wrap
    EXPECT_EQ(lost, 12.0);     // ring coverage gap, reported once
  }

  // Interval 2: three more records. The totals are differenced per harvest,
  // so interval 1's records are not re-counted and no loss is re-reported.
  for (int i = 0; i < 3; ++i) {
    tel.recorder().record(obs::RecordKind::kPktDrop, 100 + i, 0, 0, 0);
  }
  pub.publish(2'000'000);
  counted = lost = 0.0;
  for (const SnapshotRec& r : drain(pub, c)) {
    if (r.kind == static_cast<std::uint32_t>(SnapKind::kTraceKinds)) counted += r.v0;
    if (r.kind == static_cast<std::uint32_t>(SnapKind::kTraceDrops)) lost += r.v0;
  }
  if (obs::kTraceCompiledIn) {
    EXPECT_EQ(counted, 3.0);
    EXPECT_EQ(lost, 0.0);
  }
}

TEST(RecorderCursorTest, HarvestIsDeltaBasedAndWrapAware) {
  obs::FlightRecorder rec;
  rec.configure(4, obs::kAllKinds);
  obs::live::RecorderCursor cur;
  cur.reset(&rec);

  std::array<std::uint64_t, obs::live::kRecordKinds> counts{};
  EXPECT_EQ(cur.harvest(counts), 0u);  // nothing fresh yet

  rec.record(obs::RecordKind::kPktDrop, 1, 0, 0, 0);
  rec.record(obs::RecordKind::kPktEnqueue, 2, 0, 0, 0);
  counts.fill(0);
  EXPECT_EQ(cur.harvest(counts), 0u);
  EXPECT_EQ(counts[static_cast<std::size_t>(obs::RecordKind::kPktDrop)], 1u);
  EXPECT_EQ(counts[static_cast<std::size_t>(obs::RecordKind::kPktEnqueue)], 1u);

  // Ten fresh records through a four-slot ring: all ten counted (the
  // per-kind totals are exact), six reported overwritten in the ring.
  for (int i = 0; i < 10; ++i) rec.record(obs::RecordKind::kPktDrop, 10 + i, 0, 0, 0);
  counts.fill(0);
  EXPECT_EQ(cur.harvest(counts), 6u);
  EXPECT_EQ(counts[static_cast<std::size_t>(obs::RecordKind::kPktDrop)], 10u);

  // A third harvest with nothing new: zero counts, zero loss.
  counts.fill(0);
  EXPECT_EQ(cur.harvest(counts), 0u);
  for (const std::uint64_t v : counts) EXPECT_EQ(v, 0u);
}

// ---------------------------------------------------------------------------
// Profiler work-unit attribution: batched dispatch charges its whole burst
// to one kLinkBatch sample, but the *unit* totals (packets settled) must
// match the scalar path's — that is what makes per-tag profiles comparable.

struct ProfiledRun {
  std::uint64_t total_units = 0;
  std::uint64_t batch_dispatches = 0;
  std::uint64_t batch_max_units = 0;
  std::uint64_t link_units = 0;
  std::vector<TimePoint> arrivals;
};

ProfiledRun run_burst_workload(bool batched) {
  sim::Simulator sim;
  obs::Telemetry tel;
  tel.enable_profiler();
  sim.set_telemetry(&tel);

  net::Network net(sim);
  // Propagation (50 ms) far exceeds a burst's serialization span (8 ms), so
  // on the batched path the kLinkBatch end event settles the whole burst in
  // one dispatch rather than arrivals nibbling it unit by unit.
  net::Link* link = net.add_link("l", 8'000'000, 50_ms,
                                 std::make_unique<net::DropTailQueue>(64));
  link->set_batch_enabled(batched);
  const net::Route* route = net.add_route({link});

  struct Sink final : net::Endpoint {
    explicit Sink(sim::Simulator& s) : sim(s) {}
    void receive(const net::Packet&, const net::PacketOptions*) override {
      times.push_back(sim.now());
    }
    sim::Simulator& sim;
    std::vector<TimePoint> times;
  } sink(sim);

  // Three bursts of back-to-back packets: each burst batches as one dispatch
  // on the batched path, one kLinkTx dispatch per packet on the scalar path.
  for (int burst = 0; burst < 3; ++burst) {
    sim.in(Duration::millis(10 * burst), [&, burst] {
      for (net::SeqNum s = 0; s < 8; ++s) {
        net::Packet p;
        p.flow = 1;
        p.seq = static_cast<net::SeqNum>(burst * 8 + s);
        p.size_bytes = 1000;
        p.route = route;
        p.sink = &sink;
        net::inject(std::move(p));
      }
    });
  }
  sim.run();

  const obs::LoopProfiler* prof = tel.profiler();
  ProfiledRun r;
  for (std::size_t t = 0; t < obs::kEventTagCount; ++t) {
    r.total_units += prof->units(static_cast<obs::EventTag>(t));
  }
  r.batch_dispatches = prof->count(obs::EventTag::kLinkBatch);
  r.batch_max_units = prof->max_units(obs::EventTag::kLinkBatch);
  r.link_units = prof->units(obs::EventTag::kLinkTx) +
                 prof->units(obs::EventTag::kLinkBatch);
  r.arrivals = sink.times;
  sim.set_telemetry(nullptr);
  return r;
}

TEST(ProfileEquivalenceTest, BatchedAndScalarDispatchAttributeSameUnits) {
  const ProfiledRun scalar = run_burst_workload(false);
  const ProfiledRun batched = run_burst_workload(true);

  // Identical packet deliveries (batching is a perf path, not a semantic).
  ASSERT_EQ(scalar.arrivals, batched.arrivals);
  ASSERT_EQ(scalar.arrivals.size(), 24u);

  // The batched run really batched: fewer dispatches, multi-packet bursts.
  EXPECT_EQ(scalar.batch_dispatches, 0u);
  EXPECT_GT(batched.batch_dispatches, 0u);
  EXPECT_GT(batched.batch_max_units, 1u);

  // Per-packet unit attribution makes the profiles comparable: every packet
  // settles exactly one unit under a link tag on both paths.
  EXPECT_EQ(scalar.link_units, 24u);
  EXPECT_EQ(batched.link_units, 24u);
  EXPECT_EQ(scalar.total_units, batched.total_units);
}

}  // namespace

// Telemetry service end-to-end (DESIGN.md §13): the acceptance proofs.
//
//  - A faulted fig7 (competition) run and a K=4 sharded campaign must be
//    byte-identical with 0 vs 8 concurrent streaming clients attached over
//    real TCP sockets: clients observe the run, they never perturb it.
//  - A fault plan injected through the socket's control plane (applied at
//    the deterministic pre-run boundary) must reproduce exactly the probe
//    loss indicator — and so the fitted Gilbert p/q — of a cold run with
//    the same plan passed at construction.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/gilbert.hpp"
#include "core/competition_experiment.hpp"
#include "fault/plan.hpp"
#include "inet/shard_campaign.hpp"
#include "obs/live/publisher.hpp"
#include "serve/control.hpp"
#include "serve/scenario.hpp"
#include "serve/server.hpp"

namespace {

using namespace lossburst;
using util::Duration;

// ---------------------------------------------------------------------------
// Minimal blocking NDJSON socket client for the tests.

class SocketClient {
 public:
  explicit SocketClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval tv{10, 0};  // a stuck read fails the test instead of hanging it
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  ~SocketClient() {
    stop_drain();
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off, 0);
      if (n <= 0) return;
      off += static_cast<std::size_t>(n);
    }
  }

  /// Blocking read of the next full line ("" on EOF/timeout).
  std::string read_line() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {};
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Read until a line contains `needle`; returns it ("" if the stream ends
  /// first).
  std::string read_until(const std::string& needle) {
    for (;;) {
      std::string line = read_line();
      if (line.empty()) return {};
      if (line.find(needle) != std::string::npos) return line;
    }
  }

  /// Consume everything on a background thread until EOF (a subscribed
  /// streaming client at full drain speed).
  void start_drain() {
    drain_thread_ = std::thread([this] {
      char chunk[65536];
      for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) return;
        bytes_drained_.fetch_add(static_cast<std::uint64_t>(n),
                                 std::memory_order_relaxed);
      }
    });
  }

  void stop_drain() {
    if (!drain_thread_.joinable()) return;
    ::shutdown(fd_, SHUT_RDWR);
    drain_thread_.join();
  }

  [[nodiscard]] std::uint64_t bytes_drained() const {
    return bytes_drained_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::string buf_;
  std::thread drain_thread_;
  std::atomic<std::uint64_t> bytes_drained_{0};
};

/// N clients that connect, confirm the hello, subscribe, and drain.
class ClientFleet {
 public:
  ClientFleet(std::uint16_t port, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto c = std::make_unique<SocketClient>(port);
      EXPECT_TRUE(c->connected()) << "client " << i << " failed to connect";
      EXPECT_NE(c->read_until("\"type\":\"hello\""), "");
      c->send_line(R"({"cmd":"subscribe"})");
      c->start_drain();
      clients_.push_back(std::move(c));
    }
  }

  void stop() {
    for (auto& c : clients_) c->stop_drain();
  }

  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t total = 0;
    for (const auto& c : clients_) total += c->bytes_drained();
    return total;
  }

 private:
  std::vector<std::unique_ptr<SocketClient>> clients_;
};

fault::FaultPlan parse_plan_text(const std::string& text) {
  std::istringstream in(text);
  const fault::PlanParseResult r = fault::parse_plan(in);
  EXPECT_TRUE(r.ok) << r.error;
  return r.plan;
}

// ---------------------------------------------------------------------------
// Byte-identity: faulted fig7 with 0 vs 8 streaming clients.

core::CompetitionConfig small_faulted_fig7() {
  core::CompetitionConfig cfg;
  cfg.seed = 7;
  cfg.paced_flows = 2;
  cfg.window_flows = 2;
  cfg.noise_flows = 8;
  cfg.bottleneck_bps = 20'000'000;
  cfg.rtt = Duration::millis(50);
  cfg.duration = Duration::seconds(3);
  cfg.meter_interval = Duration::millis(500);
  cfg.fault = parse_plan_text(
      "seed 99\n"
      "gilbert bottleneck.fwd p=0.02 q=0.3\n");
  return cfg;
}

core::CompetitionResult run_fig7_with_clients(std::size_t n_clients,
                                              std::uint64_t* streamed_bytes) {
  obs::live::LivePublisher pub;
  serve::ControlQueue control;
  serve::TelemetryServer server(pub, control);
  server.start();

  ClientFleet fleet(server.port(), n_clients);

  core::CompetitionConfig cfg = small_faulted_fig7();
  cfg.obs.live = &pub;
  const core::CompetitionResult result = core::run_competition(cfg);

  server.stop();
  fleet.stop();
  if (streamed_bytes != nullptr) *streamed_bytes = fleet.total_bytes();
  return result;
}

void expect_identical(const core::CompetitionResult& a,
                      const core::CompetitionResult& b) {
  ASSERT_EQ(a.paced_mbps.size(), b.paced_mbps.size());
  for (std::size_t i = 0; i < a.paced_mbps.size(); ++i) {
    EXPECT_EQ(a.paced_mbps[i], b.paced_mbps[i]) << "paced interval " << i;
  }
  ASSERT_EQ(a.window_mbps.size(), b.window_mbps.size());
  for (std::size_t i = 0; i < a.window_mbps.size(); ++i) {
    EXPECT_EQ(a.window_mbps[i], b.window_mbps[i]) << "window interval " << i;
  }
  EXPECT_EQ(a.paced_mean_mbps, b.paced_mean_mbps);
  EXPECT_EQ(a.window_mean_mbps, b.window_mean_mbps);
  EXPECT_EQ(a.paced_deficit, b.paced_deficit);
  EXPECT_EQ(a.paced_cong_events_per_flow, b.paced_cong_events_per_flow);
  EXPECT_EQ(a.window_cong_events_per_flow, b.window_cong_events_per_flow);
  EXPECT_EQ(a.fault_totals.gilbert_drops, b.fault_totals.gilbert_drops);
  EXPECT_EQ(a.fault_totals.corrupted, b.fault_totals.corrupted);
}

TEST(ServeIdentityTest, FaultedFig7ByteIdenticalWith0Vs8Clients) {
  const core::CompetitionResult quiet = run_fig7_with_clients(0, nullptr);
  std::uint64_t streamed = 0;
  const core::CompetitionResult watched = run_fig7_with_clients(8, &streamed);

  // The watched run really streamed (all 8 clients saw telemetry)...
  EXPECT_GT(streamed, 0u);
  EXPECT_GT(quiet.fault_totals.gilbert_drops, 0u);  // the fault really fired
  // ...and observation changed nothing.
  expect_identical(quiet, watched);
}

// ---------------------------------------------------------------------------
// Byte-identity: K=4 sharded campaign with 0 vs 8 streaming clients.

inet::ShardCampaignConfig small_campaign() {
  inet::ShardCampaignConfig cfg;
  cfg.seed = 2006;
  cfg.shards = 4;
  cfg.regions = 8;
  cfg.sites = 120;
  cfg.flows = 32;
  cfg.duration = Duration::seconds(2);
  cfg.fault_backbone = true;
  return cfg;
}

std::uint64_t run_campaign_with_clients(std::size_t n_clients,
                                        std::uint64_t* streamed_bytes) {
  obs::live::LivePublisher pub;
  serve::ControlQueue control;
  serve::TelemetryServer server(pub, control);
  server.start();

  ClientFleet fleet(server.port(), n_clients);

  inet::ShardCampaignConfig cfg = small_campaign();
  cfg.obs.live = &pub;
  const inet::ShardCampaignResult result = inet::run_shard_campaign(cfg);

  server.stop();
  fleet.stop();
  if (streamed_bytes != nullptr) *streamed_bytes = fleet.total_bytes();
  return result.digest;
}

TEST(ServeIdentityTest, ShardCampaignK4ByteIdenticalWith0Vs8Clients) {
  // Reference digest with telemetry fully off: streaming must not move it.
  const std::uint64_t bare = inet::run_shard_campaign(small_campaign()).digest;

  const std::uint64_t quiet = run_campaign_with_clients(0, nullptr);
  std::uint64_t streamed = 0;
  const std::uint64_t watched = run_campaign_with_clients(8, &streamed);

  EXPECT_GT(streamed, 0u);
  EXPECT_EQ(quiet, bare);
  EXPECT_EQ(watched, bare);
}

// ---------------------------------------------------------------------------
// Control-plane parity: a plan injected through the socket reproduces the
// cold --fault-plan run exactly.

constexpr const char* kParityPlan =
    "seed 4242\n"
    "gilbert bottleneck.fwd p=0.03 q=0.25\n";

serve::ServeScenarioConfig parity_config() {
  serve::ServeScenarioConfig cfg;
  cfg.seed = 11;
  cfg.tcp_flows = 2;
  cfg.dynamic_slots = 2;
  cfg.bottleneck_bps = 5'000'000;
  cfg.duration = Duration::seconds(4);
  return cfg;
}

TEST(ServeControlTest, SocketInjectedPlanMatchesColdFaultPlanRun) {
  // Cold reference: the plan is attached at construction.
  std::vector<bool> cold_indicator;
  {
    obs::live::LivePublisher pub;
    serve::ControlQueue control;
    serve::ServeScenarioConfig cfg = parity_config();
    cfg.obs.live = &pub;
    cfg.fault = parse_plan_text(kParityPlan);
    serve::ServeScenario scen(cfg, &control);
    scen.run();
    cold_indicator = scen.probe_loss_indicator();
  }

  // Live run: same scenario, no cold plan; the plan arrives over the socket
  // and is applied at the t=0 control boundary before any event runs.
  std::vector<bool> live_indicator;
  std::uint64_t applied = 0;
  {
    obs::live::LivePublisher pub;
    serve::ControlQueue control;
    serve::ServeScenarioConfig cfg = parity_config();
    cfg.obs.live = &pub;
    serve::ServeScenario scen(cfg, &control);

    serve::TelemetryServer server(pub, control);
    server.start();
    SocketClient client(server.port());
    ASSERT_TRUE(client.connected());
    ASSERT_NE(client.read_until("\"type\":\"hello\""), "");
    client.send_line(
        R"({"cmd":"inject-plan","plan":"seed 4242\ngilbert bottleneck.fwd p=0.03 q=0.25"})");
    ASSERT_NE(client.read_until("\"type\":\"ok\""), "")
        << "inject-plan was not acknowledged";

    scen.run();
    live_indicator = scen.probe_loss_indicator();
    applied = scen.control_commands_applied();

    // The asynchronous verdict confirms the injector attached cleanly.
    const std::string verdict = client.read_until("\"type\":\"control\"");
    ASSERT_NE(verdict, "");
    EXPECT_NE(verdict.find("ok: plan injected"), std::string::npos) << verdict;
    server.stop();
  }

  EXPECT_EQ(applied, 1u);
  ASSERT_FALSE(cold_indicator.empty());
  ASSERT_EQ(cold_indicator, live_indicator);  // sample-for-sample identical

  // And therefore the fitted burst parameters agree exactly.
  const auto cold_fit = analysis::fit_gilbert(cold_indicator);
  const auto live_fit = analysis::fit_gilbert(live_indicator);
  EXPECT_GT(cold_fit.loss_rate, 0.0);  // the injected channel really dropped
  EXPECT_EQ(cold_fit.p_good_to_bad, live_fit.p_good_to_bad);
  EXPECT_EQ(cold_fit.p_bad_to_good, live_fit.p_bad_to_good);
  EXPECT_EQ(cold_fit.loss_rate, live_fit.loss_rate);
}

// ---------------------------------------------------------------------------
// Slow-client isolation: a client that never reads loses only its own
// samples; the publisher and a healthy client are unaffected.

TEST(ServeControlTest, DeadClientLosesOnlyItsOwnSamples) {
  obs::live::LivePublisher pub;
  serve::ControlQueue control;
  serve::TelemetryServer server(pub, control);
  server.start();

  // One healthy draining client, one client that connects, subscribes, and
  // then never reads a byte.
  SocketClient healthy(server.port());
  ASSERT_TRUE(healthy.connected());
  ASSERT_NE(healthy.read_until("\"type\":\"hello\""), "");
  healthy.send_line(R"({"cmd":"subscribe"})");
  healthy.start_drain();

  SocketClient dead(server.port());
  ASSERT_TRUE(dead.connected());
  ASSERT_NE(dead.read_until("\"type\":\"hello\""), "");
  dead.send_line(R"({"cmd":"subscribe"})");
  // ...and stops reading entirely.

  serve::ServeScenarioConfig cfg = parity_config();
  cfg.duration = Duration::seconds(2);
  cfg.obs.live = &pub;
  serve::ServeScenario scen(cfg, &control);
  scen.run();

  // The simulation finished at full rate regardless of the dead client, and
  // the healthy client saw the stream.
  EXPECT_GT(pub.intervals_published(), 0u);
  server.stop();
  healthy.stop_drain();
  EXPECT_GT(healthy.bytes_drained(), 0u);
}

}  // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/rng.hpp"

namespace lossburst::sim {
namespace {

using util::TimePoint;

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(30), [&] { order.push_back(3); });
  q.schedule(TimePoint(10), [&] { order.push_back(1); });
  q.schedule(TimePoint(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, PopReturnsEventTime) {
  EventQueue q;
  q.schedule(TimePoint(77), [] {});
  EXPECT_EQ(q.pop_and_run(), TimePoint(77));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(TimePoint(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(TimePoint(1), [&] { order.push_back(1); });
  q.schedule(TimePoint(2), [&] { order.push_back(2); });
  h.cancel();
  EXPECT_EQ(q.next_time(), TimePoint(2));
  q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancelNonHeadLazily) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(TimePoint(2), [&] { order.push_back(2); });
  q.schedule(TimePoint(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(EventQueueTest, ScheduleFromWithinEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] {
    order.push_back(1);
    q.schedule(TimePoint(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Insert in a scrambled deterministic order.
  for (std::int64_t i = 0; i < 5000; ++i) {
    const std::int64_t t = (i * 7919) % 5000;
    q.schedule(TimePoint(t), [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i - 1], times[i]);
}

TEST(EventQueueTest, ScheduledCountTracksAll) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(TimePoint(i), [] {});
  EXPECT_EQ(q.scheduled_count(), 5u);
}

TEST(EventQueueTest, HandleIsTriviallyCopyable) {
  static_assert(std::is_trivially_copyable_v<EventHandle>);
  EventQueue q;
  EventHandle h = q.schedule(TimePoint(1), [] {});
  EventHandle copy = h;  // copies the token, not the event
  EXPECT_TRUE(copy.pending());
  copy.cancel();
  EXPECT_FALSE(h.pending());  // both tokens name the same event
}

TEST(EventQueueTest, CancelAfterFireIsNoOp) {
  EventQueue q;
  int runs = 0;
  EventHandle h = q.schedule(TimePoint(1), [&] { ++runs; });
  q.pop_and_run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not disturb anything...
  h.cancel();  // ...no matter how often it is called
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, StaleGenerationHandleNotPendingAfterSlotReuse) {
  EventQueue q;
  // Fire the only event: its slot is recycled eagerly.
  EventHandle old = q.schedule(TimePoint(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(old.pending());
  // The next schedule reuses the slot with a bumped generation: the stale
  // handle must stay !pending() and its cancel() must not kill the new event.
  bool second_ran = false;
  EventHandle fresh = q.schedule(TimePoint(2), [&] { second_ran = true; });
  EXPECT_FALSE(old.pending());
  EXPECT_TRUE(fresh.pending());
  old.cancel();
  EXPECT_TRUE(fresh.pending());
  q.pop_and_run();
  EXPECT_TRUE(second_ran);
}

TEST(EventQueueTest, CancelledSlotReusedEagerly) {
  EventQueue q;
  EventHandle a = q.schedule(TimePoint(5), [] {});
  a.cancel();
  EXPECT_TRUE(q.empty());
  // Cancel-then-schedule churn must not leak live events or run anything.
  for (int i = 0; i < 1000; ++i) {
    EventHandle h = q.schedule(TimePoint(5 + i), [] { FAIL(); });
    h.cancel();
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_time(), TimePoint::max());
}

TEST(EventQueueTest, CancelFromWithinCallback) {
  EventQueue q;
  bool later_ran = false;
  EventHandle later = q.schedule(TimePoint(2), [&] { later_ran = true; });
  q.schedule(TimePoint(1), [&] { later.cancel(); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_FALSE(later_ran);
}

TEST(EventQueueTest, SelfCancelFromOwnCallbackIsNoOp) {
  // By the time a callback runs, its own handle is already stale; cancelling
  // it from inside must not disturb the queue or any reused slot.
  EventQueue q;
  EventHandle self;
  bool other_ran = false;
  self = q.schedule(TimePoint(1), [&] {
    self.cancel();
    q.schedule(TimePoint(2), [&] { other_ran = true; });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(other_ran);
}

TEST(EventQueueTest, LargeCaptureCallbacksWork) {
  // Captures above the small-slot budget route to the large pool; behavior
  // must be identical, including cancellation with destructor side effects.
  struct Big {
    std::array<std::uint64_t, 18> payload;  // 144 bytes: beyond the 48B slots
  };
  EventQueue q;
  Big big{};
  big.payload[17] = 99;
  std::uint64_t seen = 0;
  q.schedule(TimePoint(1), [big, &seen] { seen = big.payload[17]; });
  EventHandle cancelled = q.schedule(TimePoint(2), [big, &seen] { seen = 1; });
  cancelled.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(seen, 99u);
}

TEST(EventQueueTest, CallbackDestructorRunsExactlyOnceOnCancel) {
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    Probe(const Probe& o) = default;
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
    void operator()() const {}
  };
  int destroyed = 0;
  {
    EventQueue q;
    EventHandle h = q.schedule(TimePoint(1), Probe(&destroyed));
    h.cancel();
    EXPECT_EQ(destroyed, 1) << "cancel must destroy the callback eagerly";
    h.cancel();
    EXPECT_EQ(destroyed, 1);
  }
  EXPECT_EQ(destroyed, 1);
}

// ---------------------------------------------------------------------------
// Differential validation of the two-tier ladder scheduler (DESIGN.md §11):
// whatever mixture of horizons, cancels, and interleaved drains the queue
// sees, its dispatch sequence must equal a naive reference — every
// non-cancelled event stable-sorted by time, ties broken by insertion order.

namespace {

struct RefEvent {
  std::int64_t at = 0;
  int payload = 0;      ///< unique per schedule call
  bool cancelled = false;
  EventHandle h;
};

/// The reference dispatch order: schedule order is the vector order, so a
/// stable sort by time alone reproduces the (time, insertion seq) contract.
std::vector<std::pair<std::int64_t, int>> reference_order(std::vector<RefEvent> evs) {
  std::stable_sort(evs.begin(), evs.end(),
                   [](const RefEvent& a, const RefEvent& b) { return a.at < b.at; });
  std::vector<std::pair<std::int64_t, int>> out;
  for (const RefEvent& e : evs) {
    if (!e.cancelled) out.emplace_back(e.at, e.payload);
  }
  return out;
}

}  // namespace

TEST(EventQueueTest, DifferentialRandomizedDispatchOrder) {
  // Offsets are drawn from four scales so entries land in (and migrate
  // between) every tier: the near heap, the rung band, and the overflow
  // list, with drains forcing rung sweeps and overflow reseeds in between.
  util::Rng rng(0x1adde8);
  EventQueue q;
  std::vector<RefEvent> evs;
  std::vector<std::pair<std::int64_t, int>> got;
  std::int64_t now = 0;
  int next_payload = 0;

  const auto draw_offset = [&]() -> std::int64_t {
    switch (rng.next() & 3u) {
      case 0: return static_cast<std::int64_t>(rng.next() & 0x3FFu);         // near
      case 1: return static_cast<std::int64_t>(rng.next() & 0xFFFFFFu);      // rungs
      case 2: return static_cast<std::int64_t>(rng.next() & 0x3FFFFFFFFFull);  // overflow
      default: return static_cast<std::int64_t>(rng.next() & 0x7u);          // ties
    }
  };

  for (int round = 0; round < 400; ++round) {
    const std::uint64_t op = rng.next() % 10u;
    if (op < 5u) {  // schedule a small burst
      const int k = 1 + static_cast<int>(rng.next() % 4u);
      for (int i = 0; i < k; ++i) {
        RefEvent e;
        e.at = now + draw_offset();
        e.payload = next_payload++;
        const std::int64_t at = e.at;
        const int payload = e.payload;
        e.h = q.schedule(TimePoint(e.at), [&got, at, payload] {
          got.emplace_back(at, payload);
        });
        evs.push_back(e);
      }
    } else if (op < 7u) {  // cancel a random still-pending event (any tier)
      if (!evs.empty()) {
        RefEvent& e = evs[rng.next() % evs.size()];
        if (e.h.pending()) {
          e.h.cancel();
          e.cancelled = true;
        }
      }
    } else {  // drain a few events, advancing now
      const int k = 1 + static_cast<int>(rng.next() % 6u);
      for (int i = 0; i < k && !q.empty(); ++i) {
        const TimePoint t = q.pop_and_run();
        EXPECT_GE(t.ns(), now);
        now = t.ns();
        ASSERT_FALSE(got.empty());
        EXPECT_EQ(got.back().first, t.ns()) << "pop time must match event time";
      }
    }
  }
  while (!q.empty()) q.pop_and_run();

  EXPECT_EQ(got, reference_order(evs));
}

TEST(EventQueueTest, CancelOverflowedHandleThenReseed) {
  // Entries past the rung band live in the overflow tier; cancelling them
  // there must neither fire them nor disturb the order of survivors once
  // the band is re-anchored around the far cluster.
  EventQueue q;
  std::vector<std::pair<std::int64_t, int>> got;
  const auto record = [&](std::int64_t at, int payload) {
    return q.schedule(TimePoint(at), [&got, at, payload] { got.emplace_back(at, payload); });
  };
  std::vector<RefEvent> evs;
  const auto add = [&](std::int64_t at) {
    RefEvent e;
    e.at = at;
    e.payload = static_cast<int>(evs.size());
    e.h = record(at, e.payload);
    evs.push_back(e);
  };
  // A near cluster, then a far cluster well beyond the initial rung band,
  // including equal-timestamp runs whose FIFO order must survive the
  // overflow -> rung -> heap migrations.
  for (int i = 0; i < 32; ++i) add(10 + i);
  const std::int64_t far = (1LL << 40) + 123;
  for (int i = 0; i < 32; ++i) add(far + (i / 4) * 1000);  // 4-way ties
  // Cancel every third far entry while it still sits in overflow, plus one
  // near entry for contrast.
  for (std::size_t i = 32; i < evs.size(); i += 3) {
    evs[i].h.cancel();
    evs[i].cancelled = true;
  }
  evs[5].h.cancel();
  evs[5].cancelled = true;
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(got, reference_order(evs));
}

TEST(EventQueueTest, CancelEntireOverflowThenScheduleNearAgain) {
  // Cancelling the whole far horizon must leave the queue fully usable:
  // live accounting intact, later near-term scheduling unaffected.
  EventQueue q;
  std::vector<EventHandle> far;
  far.reserve(64);
  for (int i = 0; i < 64; ++i) {
    far.push_back(q.schedule(TimePoint((1LL << 45) + i), [] { FAIL(); }));
  }
  int ran = 0;
  q.schedule(TimePoint(1), [&] { ++ran; });
  for (EventHandle& h : far) h.cancel();
  q.schedule(TimePoint(2), [&] { ++ran; });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, QueueDestructorDestroysUnfiredCallbacks) {
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(o.counter) { o.counter = nullptr; }
    Probe(const Probe& o) = default;
    ~Probe() {
      if (counter != nullptr) ++*counter;
    }
    void operator()() const {}
  };
  int destroyed = 0;
  {
    EventQueue q;
    q.schedule(TimePoint(1), Probe(&destroyed));
    q.schedule(TimePoint(2), Probe(&destroyed));
  }
  EXPECT_EQ(destroyed, 2);
}

}  // namespace
}  // namespace lossburst::sim

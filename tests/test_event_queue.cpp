#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"

namespace lossburst::sim {
namespace {

using util::TimePoint;

TEST(EventQueueTest, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), TimePoint::max());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(30), [&] { order.push_back(3); });
  q.schedule(TimePoint(10), [&] { order.push_back(1); });
  q.schedule(TimePoint(20), [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, PopReturnsEventTime) {
  EventQueue q;
  q.schedule(TimePoint(77), [] {});
  EXPECT_EQ(q.pop_and_run(), TimePoint(77));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventHandle h = q.schedule(TimePoint(1), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  std::vector<int> order;
  EventHandle h = q.schedule(TimePoint(1), [&] { order.push_back(1); });
  q.schedule(TimePoint(2), [&] { order.push_back(2); });
  h.cancel();
  EXPECT_EQ(q.next_time(), TimePoint(2));
  q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancelNonHeadLazily) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] { order.push_back(1); });
  EventHandle h = q.schedule(TimePoint(2), [&] { order.push_back(2); });
  q.schedule(TimePoint(3), [&] { order.push_back(3); });
  h.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, HandleNotPendingAfterFire) {
  EventQueue q;
  EventHandle h = q.schedule(TimePoint(1), [] {});
  q.pop_and_run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // harmless
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventHandle h;
  EXPECT_FALSE(h.pending());
  h.cancel();  // no-op
}

TEST(EventQueueTest, ScheduleFromWithinEvent) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(1), [&] {
    order.push_back(1);
    q.schedule(TimePoint(2), [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<std::int64_t> times;
  // Insert in a scrambled deterministic order.
  for (std::int64_t i = 0; i < 5000; ++i) {
    const std::int64_t t = (i * 7919) % 5000;
    q.schedule(TimePoint(t), [&times, t] { times.push_back(t); });
  }
  while (!q.empty()) q.pop_and_run();
  ASSERT_EQ(times.size(), 5000u);
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_LE(times[i - 1], times[i]);
}

TEST(EventQueueTest, ScheduledCountTracksAll) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(TimePoint(i), [] {});
  EXPECT_EQ(q.scheduled_count(), 5u);
}

}  // namespace
}  // namespace lossburst::sim

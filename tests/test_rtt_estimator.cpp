#include <gtest/gtest.h>

#include "tcp/rtt_estimator.hpp"

namespace lossburst::tcp {
namespace {

using namespace lossburst::util::literals;
using util::Duration;

TEST(RttEstimatorTest, InitialRtoBeforeSamples) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  EXPECT_EQ(est.rto(), 1_s);  // RFC 6298 initial value
}

TEST(RttEstimatorTest, FirstSampleInitializes) {
  RttEstimator est;
  est.add_sample(100_ms);
  EXPECT_TRUE(est.has_sample());
  EXPECT_EQ(est.srtt(), 100_ms);
  EXPECT_EQ(est.rttvar(), 50_ms);
  // srtt + 4*rttvar = 300ms, below the RFC 2988 1 s floor.
  EXPECT_EQ(est.rto(), 1_s);
}

TEST(RttEstimatorTest, RtoAboveFloorTracksEstimate) {
  RttEstimator est;
  est.add_sample(400_ms);
  // srtt + 4*rttvar = 400 + 800 = 1200ms, above the floor.
  EXPECT_EQ(est.rto(), 1200_ms);
}

TEST(RttEstimatorTest, EwmaConvergesToConstantRtt) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.add_sample(80_ms);
  EXPECT_NEAR(est.srtt().millis(), 80.0, 0.1);
  EXPECT_NEAR(est.rttvar().millis(), 0.0, 0.5);
}

TEST(RttEstimatorTest, MinRtoFloorApplies) {
  RttEstimator est;
  for (int i = 0; i < 200; ++i) est.add_sample(10_ms);
  // srtt + 4*rttvar ~ 10ms, far below the RFC 2988 1 s floor.
  EXPECT_EQ(est.rto(), 1_s);
}

TEST(RttEstimatorTest, CustomFloorRespected) {
  RttEstimator::Params p;
  p.min_rto = 200_ms;
  RttEstimator est(p);
  for (int i = 0; i < 200; ++i) est.add_sample(10_ms);
  EXPECT_EQ(est.rto(), 200_ms);
}

TEST(RttEstimatorTest, VarianceGrowsWithJitter) {
  RttEstimator est;
  for (int i = 0; i < 100; ++i) est.add_sample(i % 2 == 0 ? 50_ms : 150_ms);
  EXPECT_GT(est.rttvar(), 20_ms);
  EXPECT_GT(est.rto(), 200_ms);
}

TEST(RttEstimatorTest, BackoffDoubles) {
  RttEstimator est;
  for (int i = 0; i < 50; ++i) est.add_sample(100_ms);
  const Duration base = est.rto();
  est.backoff();
  EXPECT_EQ(est.rto().ns(), base.ns() * 2);
  est.backoff();
  EXPECT_EQ(est.rto().ns(), base.ns() * 4);
}

TEST(RttEstimatorTest, SampleResetsBackoff) {
  RttEstimator est;
  est.add_sample(100_ms);
  const Duration base = est.rto();
  est.backoff();
  est.backoff();
  EXPECT_EQ(est.rto().ns(), base.ns() * 4);
  // A fresh sample clears the backoff shift; the EWMA update also shrinks
  // rttvar, so the new RTO is at most the pre-backoff value.
  est.add_sample(100_ms);
  EXPECT_LE(est.rto(), base);
  EXPECT_GT(est.rto(), 100_ms);
}

TEST(RttEstimatorTest, MaxRtoCapsBackoff) {
  RttEstimator::Params p;
  p.max_rto = 2_s;
  RttEstimator est(p);
  est.add_sample(1_s);
  for (int i = 0; i < 10; ++i) est.backoff();
  EXPECT_LE(est.rto(), 2_s);
}

TEST(RttEstimatorTest, MinRttTracksSmallest) {
  RttEstimator est;
  est.add_sample(100_ms);
  est.add_sample(40_ms);
  est.add_sample(90_ms);
  EXPECT_EQ(est.min_rtt(), 40_ms);
}

TEST(RttEstimatorTest, NegativeSampleIgnored) {
  RttEstimator est;
  est.add_sample(Duration::millis(-5));
  EXPECT_FALSE(est.has_sample());
}

TEST(RttEstimatorTest, JacobsonGains) {
  // One divergent sample moves srtt by alpha * error.
  RttEstimator est;
  est.add_sample(100_ms);
  est.add_sample(180_ms);
  EXPECT_NEAR(est.srtt().millis(), 100.0 + 0.125 * 80.0, 0.01);
}

}  // namespace
}  // namespace lossburst::tcp

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"

namespace lossburst::net {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

class Collector final : public Endpoint {
 public:
  explicit Collector(sim::Simulator& sim) : sim_(sim) {}
  void receive(const Packet& pkt, const PacketOptions* /*opt*/) override {
    ++count;
    last_time = sim_.now();
    last = pkt;
  }
  int count = 0;
  TimePoint last_time;
  Packet last;

 private:
  sim::Simulator& sim_;
};

TEST(StarTest, BuildsAllRoutes) {
  sim::Simulator sim(1);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 5;
  Star star = build_star(net, cfg);
  EXPECT_EQ(star.uplinks.size(), 5u);
  EXPECT_EQ(star.downlinks.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(star.routes[i][i], nullptr);
    for (std::size_t j = 0; j < 5; ++j) {
      if (i != j) {
        ASSERT_NE(star.routes[i][j], nullptr);
        EXPECT_EQ(star.routes[i][j]->size(), 2u);
        EXPECT_EQ((*star.routes[i][j])[0], star.uplinks[i]);
        EXPECT_EQ((*star.routes[i][j])[1], star.downlinks[j]);
      }
    }
  }
}

TEST(StarTest, ExplicitDelaysAndRtt) {
  sim::Simulator sim(2);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 3;
  cfg.node_delays = {1_ms, 2_ms, 3_ms};
  Star star = build_star(net, cfg);
  EXPECT_EQ(star.base_rtt(0, 1), 2 * (1_ms + 2_ms));
  EXPECT_EQ(star.base_rtt(1, 2), 2 * (2_ms + 3_ms));
  EXPECT_EQ(star.base_rtt(2, 0), star.base_rtt(0, 2));
}

TEST(StarTest, SampledDelaysWithinRange) {
  sim::Simulator sim(3);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 16;
  Star star = build_star(net, cfg);
  for (Duration d : star.node_delays) {
    EXPECT_GE(d, 1_ms);
    EXPECT_LE(d, 25_ms);
  }
}

TEST(StarTest, PacketTraversesUplinkThenDownlink) {
  sim::Simulator sim(4);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 2;
  cfg.node_delays = {3_ms, 7_ms};
  cfg.switch_delay = Duration::micros(0);
  Star star = build_star(net, cfg);
  Collector sink(sim);
  Packet p;
  p.flow = 1;
  p.size_bytes = 1000;
  p.route = star.routes[0][1];
  p.sink = &sink;
  sim.in(Duration::zero(), [&, p] { inject(Packet(p)); });
  sim.run();
  ASSERT_EQ(sink.count, 1);
  // 3ms + 7ms propagation plus two 80us serializations at 100 Mbps.
  EXPECT_EQ(sink.last_time, TimePoint::zero() + 10_ms + Duration::micros(160));
  EXPECT_EQ(star.uplinks[0]->packets_sent(), 1u);
  EXPECT_EQ(star.downlinks[1]->packets_sent(), 1u);
}

TEST(StarTest, IncastConvergesOnDownlink) {
  // Many nodes blast one receiver: drops happen at that receiver's
  // downlink, not at the senders' uplinks.
  sim::Simulator sim(5);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 6;
  cfg.node_delays = std::vector<Duration>(6, 2_ms);
  cfg.buffer_pkts = 16;
  Star star = build_star(net, cfg);
  Collector sink(sim);
  // Each sender emits at its own line rate (one packet per 80 us), so the
  // uplinks never queue; five line-rate streams then converge on node 0's
  // downlink.
  for (std::size_t src = 1; src < 6; ++src) {
    for (int k = 0; k < 50; ++k) {
      sim.in(Duration::micros(80) * k, [&, src, k] {
        Packet p;
        p.flow = static_cast<FlowId>(src);
        p.seq = static_cast<SeqNum>(k);
        p.size_bytes = 1000;
        p.route = star.routes[src][0];
        p.sink = &sink;
        inject(std::move(p));
      });
    }
  }
  sim.run();
  std::uint64_t uplink_drops = 0;
  for (Link* up : star.uplinks) uplink_drops += up->queue().counters().dropped;
  EXPECT_EQ(uplink_drops, 0u);
  EXPECT_GT(star.downlinks[0]->queue().counters().dropped, 0u);
  EXPECT_EQ(sink.count + static_cast<int>(star.downlinks[0]->queue().counters().dropped),
            250);
}

TEST(StarTest, BufferDefaultsToBdp) {
  sim::Simulator sim(6);
  Network net(sim);
  StarConfig cfg;
  cfg.nodes = 2;
  cfg.node_delays = {25_ms, 25_ms};
  Star star = build_star(net, cfg);
  auto* q = dynamic_cast<DropTailQueue*>(&star.downlinks[0]->queue());
  ASSERT_NE(q, nullptr);
  // BDP at 2*25ms over 100 Mbps = 625 packets.
  EXPECT_NEAR(static_cast<double>(q->capacity()), 625.0, 5.0);
}

TEST(MakeQueueTest, RedTuningApplied) {
  PacketPool pool;
  auto q = make_queue(QueueKind::kRed, 100, util::Rng(1), Duration::millis(50),
                      RedTuning{0.5, 0.9, 0.3, 0.01});
  auto* red = dynamic_cast<RedQueue*>(q.get());
  ASSERT_NE(red, nullptr);
  red->attach(nullptr, &pool);
  // Behavioural check: below min_th (50 packets) nothing drops.
  for (SeqNum s = 0; s < 40; ++s) {
    Packet p;
    p.seq = s;
    p.size_bytes = 1000;
    EXPECT_TRUE(red->enqueue(pool.materialize(p)));
  }
  EXPECT_EQ(red->counters().dropped, 0u);
}

}  // namespace
}  // namespace lossburst::net

// Model-check suite for the publisher's freeze/publish lifecycle
// (DESIGN.md §13, §14).
//
// The LivePublisher's contract with client threads is carried entirely by
// the FreezeLatch: the producer builds the schema, freeze()s it, then
// publishes per-interval batches capped by complete_interval(); a client
// gates every plain read behind frozen() / intervals() acquire loads. The
// scenario below reproduces that lifecycle with plain-annotated payload
// writes standing in for the schema and batch buffers, and proves:
//
//   * a reader attaching concurrently with freeze() either backs off
//     (frozen()==false) or gets a race-free, fully-built view of the
//     schema — on every interleaving;
//   * interval publication is monotonic and gapless: a reader that
//     observes intervals()==k finds all k batches complete;
//   * the gates are load-bearing: a plain read NOT behind the acquire gate
//     is a reported data race with a replayable schedule, not a latent
//     corruption.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "check/sync.hpp"
#include "obs/live/freeze_latch.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;
using lossburst::obs::live::FreezeLatch;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

using Latch = FreezeLatch<ModelSync>;

constexpr std::uint64_t kIntervals = 2;

// Stand-in for the publisher's frozen schema + per-interval batch buffers:
// ordinary (non-atomic) state, every access plain-annotated exactly as the
// production buffers' accessors are.
struct Payload {
  std::uint64_t schema = 0;
  std::uint64_t batch[kIntervals] = {0, 0};
};

// The producer half of LivePublisher::publish(): build schema, freeze, then
// per interval fill the batch and complete it.
void producer(Latch& latch, Payload& p) {
  ModelSync::plain_write(&p.schema);
  p.schema = 42;
  latch.freeze();
  for (std::uint64_t i = 0; i < kIntervals; ++i) {
    model::expect(latch.interval_index() == i, "interval index not monotonic");
    ModelSync::plain_write(&p.batch[i]);
    p.batch[i] = 1000 + i;
    latch.complete_interval();
  }
}

// The client half: gate on frozen(), then read everything intervals()
// promises. Returns how many intervals were observed complete.
std::uint64_t gated_reader(const Latch& latch, const Payload& p) {
  if (!latch.frozen()) return 0;  // back off: schema still being built
  ModelSync::plain_read(&p.schema);
  model::expect(p.schema == 42, "reader saw a half-built schema after frozen()");
  const std::uint64_t k = latch.intervals();
  for (std::uint64_t i = 0; i < k; ++i) {
    ModelSync::plain_read(&p.batch[i]);
    model::expect(p.batch[i] == 1000 + i,
                  "intervals()==k promised batch i<k complete, but it was not");
  }
  return k;
}

// A polling client, as the live clients actually behave: between frames it
// re-samples the latch, and every sample must be self-consistent — once
// frozen, always frozen; intervals() never goes backwards; and everything
// intervals() promises is complete. Each acquire load branches over the
// producer's store history, so the samples are taken at every reachable
// point of the lifecycle.
void sampling_reader(const Latch& latch, const Payload& p, int samples) {
  std::uint64_t prev = 0;
  bool was_frozen = false;
  for (int s = 0; s < samples; ++s) {
    if (!latch.frozen()) {
      model::expect(!was_frozen, "frozen() went backwards");
      continue;
    }
    was_frozen = true;
    ModelSync::plain_read(&p.schema);
    model::expect(p.schema == 42, "reader saw a half-built schema after frozen()");
    const std::uint64_t k = latch.intervals();
    model::expect(k >= prev, "intervals() went backwards");
    model::expect(k <= kIntervals, "intervals() overshot the producer");
    for (std::uint64_t i = 0; i < k; ++i) {
      ModelSync::plain_read(&p.batch[i]);
      model::expect(p.batch[i] == 1000 + i,
                    "intervals()==k promised batch i<k complete, but it was not");
    }
    prev = k;
  }
}

// --------------------------------------------------------------------------
// The shipped protocol: race-free and gapless on every interleaving. Two
// polling readers attach concurrently with the freeze and the interval
// stream — every combination of sample point × lifecycle stage is explored
// — and T0 re-reads after the joins, when everything must be visible.

TEST(McPublisher, FreezeAndIntervalGatesRaceFreeExhaustive) {
  model::Options opt;
  opt.max_preemptions = 3;
  const model::Result res = model::explore(opt, [] {
    Latch latch;
    Payload p;
    model::thread w([&] { producer(latch, p); });
    model::thread r1([&] { sampling_reader(latch, p, 4); });
    model::thread r2([&] { sampling_reader(latch, p, 3); });
    w.join();
    r1.join();
    r2.join();
    model::expect(gated_reader(latch, p) == kIntervals,
                  "completed intervals not all visible after producer finished");
  });
  log_summary("publisher/freeze-lifecycle", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_GE(res.schedules, 10000u);
}

// --------------------------------------------------------------------------
// Negative: skipping the frozen() gate races the schema write on some
// schedule, and the racing schedule replays to the identical diagnosis.

TEST(McPublisher, UngatedSchemaReadIsARace) {
  const auto body = [] {
    Latch latch;
    Payload p;
    model::name(&p.schema, "schema");
    model::thread w([&] { producer(latch, p); });
    model::thread r([&] {
      ModelSync::plain_read(&p.schema);  // BUG: no frozen() gate
      (void)p.schema;
    });
    w.join();
    r.join();
  };
  const model::Result res = model::explore(body);
  log_summary("publisher/ungated-schema-read", res);
  ASSERT_TRUE(res.failed) << "ungated schema read was not reported";
  EXPECT_NE(res.failure.find("race"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.trace.empty());

  model::Options replay;
  replay.replay = res.trace;
  const model::Result rep = model::explore(replay, body);
  ASSERT_TRUE(rep.failed);
  EXPECT_EQ(rep.failure, res.failure);
}

// Negative: reading a batch slot beyond what intervals() promised races the
// producer's in-flight batch write.

TEST(McPublisher, BatchReadBeyondIntervalsIsARace) {
  const model::Result res = model::explore([] {
    Latch latch;
    Payload p;
    model::thread w([&] { producer(latch, p); });
    model::thread r([&] {
      if (!latch.frozen()) return;
      // BUG: reads slot 0 unconditionally instead of gating on intervals().
      ModelSync::plain_read(&p.batch[0]);
      (void)p.batch[0];
    });
    w.join();
    r.join();
  });
  log_summary("publisher/batch-beyond-intervals", res);
  ASSERT_TRUE(res.failed) << "over-eager batch read was not reported";
  EXPECT_NE(res.failure.find("race"), std::string::npos) << res.failure;
}

}  // namespace

// Litmus tests for the model checker itself (DESIGN.md §14): before trusting
// the checker on the production primitives, prove that it (a) finds the
// classic weak-memory outcomes that relaxed orderings permit, (b) does NOT
// report them once the correct release/acquire edges are present, and
// (c) diagnoses races, deadlocks, and property failures with replayable
// traces.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <utility>

#include "check/sync.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

// --------------------------------------------------------------------------
// Store buffering (Dekker): relaxed permits r0 == r1 == 0; seq_cst forbids it.

TEST(McSelftest, StoreBufferRelaxedAllowsBothZero) {
  std::set<std::pair<int, int>> outcomes;
  const model::Result res = model::explore([&] {
    model::atomic<int> x(0);
    model::atomic<int> y(0);
    int r0 = -1;
    int r1 = -1;
    model::thread t1([&] {
      x.store(1, std::memory_order_relaxed);
      r0 = y.load(std::memory_order_relaxed);
    });
    model::thread t2([&] {
      y.store(1, std::memory_order_relaxed);
      r1 = x.load(std::memory_order_relaxed);
    });
    t1.join();
    t2.join();
    outcomes.insert({r0, r1});
  });
  log_summary("sb-relaxed", res);
  ASSERT_FALSE(res.failed) << res.failure;
  EXPECT_TRUE(res.complete);
  EXPECT_TRUE(outcomes.count({0, 0})) << "relaxed store buffering must expose (0,0)";
  EXPECT_TRUE(outcomes.count({1, 1}));
}

TEST(McSelftest, StoreBufferSeqCstForbidsBothZero) {
  const model::Result res = model::explore([&] {
    model::atomic<int> x(0);
    model::atomic<int> y(0);
    int r0 = -1;
    int r1 = -1;
    model::thread t1([&] {
      x.store(1, std::memory_order_seq_cst);
      r0 = y.load(std::memory_order_seq_cst);
    });
    model::thread t2([&] {
      y.store(1, std::memory_order_seq_cst);
      r1 = x.load(std::memory_order_seq_cst);
    });
    t1.join();
    t2.join();
    model::expect(!(r0 == 0 && r1 == 0), "seq_cst store buffering leaked (0,0)");
  });
  log_summary("sb-seqcst", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// Message passing: relaxed flag leaks a stale payload; release/acquire (or
// the fence formulation) forbids it.

TEST(McSelftest, MessagePassingRelaxedLeaksStaleRead) {
  const model::Result res = model::explore([&] {
    model::atomic<int> data(0);
    model::atomic<int> flag(0);
    model::thread t1([&] {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_relaxed);
    });
    if (flag.load(std::memory_order_relaxed) == 1) {
      model::expect(data.load(std::memory_order_relaxed) == 42,
                    "stale data behind relaxed flag");
    }
    t1.join();
  });
  log_summary("mp-relaxed", res);
  ASSERT_TRUE(res.failed) << "checker missed the classic relaxed MP stale read";
  EXPECT_NE(res.failure.find("stale data"), std::string::npos) << res.failure;
  EXPECT_FALSE(res.trace.empty());
}

TEST(McSelftest, MessagePassingReleaseAcquireIsExact) {
  const model::Result res = model::explore([&] {
    model::atomic<int> data(0);
    model::atomic<int> flag(0);
    model::thread t1([&] {
      data.store(42, std::memory_order_relaxed);
      flag.store(1, std::memory_order_release);
    });
    if (flag.load(std::memory_order_acquire) == 1) {
      model::expect(data.load(std::memory_order_relaxed) == 42,
                    "stale data behind release/acquire flag");
    }
    t1.join();
  });
  log_summary("mp-relacq", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

TEST(McSelftest, MessagePassingFencesAreExact) {
  const model::Result res = model::explore([&] {
    model::atomic<int> data(0);
    model::atomic<int> flag(0);
    model::thread t1([&] {
      data.store(42, std::memory_order_relaxed);
      model::fence(std::memory_order_release);
      flag.store(1, std::memory_order_relaxed);
    });
    if (flag.load(std::memory_order_relaxed) == 1) {
      model::fence(std::memory_order_acquire);
      model::expect(data.load(std::memory_order_relaxed) == 42,
                    "stale data across fence pair");
    }
    t1.join();
  });
  log_summary("mp-fence", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// Plain-access race detector.

TEST(McSelftest, PlainWriteWriteRaceDetected) {
  const model::Result res = model::explore([&] {
    int g = 0;
    model::name(&g, "g");
    model::thread t1([&] {
      ModelSync::plain_write(&g);
      g = 1;
    });
    ModelSync::plain_write(&g);
    g = 2;
    t1.join();
  });
  log_summary("race-ww", res);
  ASSERT_TRUE(res.failed) << "checker missed an unsynchronized write/write race";
  EXPECT_NE(res.failure.find("data race"), std::string::npos) << res.failure;
}

TEST(McSelftest, MutexOrdersPlainAccesses) {
  const model::Result res = model::explore([&] {
    int g = 0;
    model::mutex mu;
    model::thread t1([&] {
      mu.lock();
      ModelSync::plain_write(&g);
      g += 1;
      mu.unlock();
    });
    mu.lock();
    ModelSync::plain_write(&g);
    g += 1;
    mu.unlock();
    t1.join();
    model::expect(g == 2, "mutex-protected increments lost an update");
  });
  log_summary("race-mutex", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

TEST(McSelftest, BarrierOrdersPlainAccesses) {
  const model::Result res = model::explore([&] {
    int data = 0;
    lossburst::check::barrier<> gate(2);
    model::thread t1([&] {
      ModelSync::plain_write(&data);
      data = 7;
      gate.arrive_and_wait();
    });
    gate.arrive_and_wait();
    ModelSync::plain_read(&data);
    model::expect(data == 7, "barrier did not publish the pre-arrival write");
    t1.join();
  });
  log_summary("barrier", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// Deadlock, livelock, lifecycle diagnostics.

TEST(McSelftest, AbbaDeadlockDetected) {
  const model::Result res = model::explore([&] {
    model::mutex a;
    model::mutex b;
    model::thread t1([&] {
      a.lock();
      b.lock();
      b.unlock();
      a.unlock();
    });
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
    t1.join();
  });
  log_summary("deadlock", res);
  ASSERT_TRUE(res.failed) << "checker missed the ABBA deadlock";
  EXPECT_NE(res.failure.find("deadlock"), std::string::npos) << res.failure;
}

TEST(McSelftest, UnjoinedThreadDiagnosed) {
  const model::Result res = model::explore([&] {
    model::thread t1([] {});
    // t1 destroyed while joinable.
  });
  log_summary("unjoined", res);
  ASSERT_TRUE(res.failed);
}

// --------------------------------------------------------------------------
// RMW atomicity: concurrent fetch_add never loses an update.

TEST(McSelftest, FetchAddNeverLosesUpdates) {
  const model::Result res = model::explore([&] {
    model::atomic<int> n(0);
    model::thread t1([&] { n.fetch_add(1, std::memory_order_relaxed); });
    model::thread t2([&] { n.fetch_add(1, std::memory_order_relaxed); });
    t1.join();
    t2.join();
    model::expect(n.load(std::memory_order_relaxed) == 2, "lost fetch_add update");
  });
  log_summary("rmw", res);
  ASSERT_FALSE(res.failed) << res.failure << "\ntrace: " << res.trace << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// Failure traces replay deterministically.

TEST(McSelftest, FailingScheduleReplays) {
  const auto make_body = [] {
    return [] {
      model::atomic<int> x(0);
      model::thread t1([&] { x.store(1, std::memory_order_relaxed); });
      const int r = x.load(std::memory_order_relaxed);
      t1.join();
      model::expect(r == 0, "saw the store (intentional failure branch)");
    };
  };
  const model::Result res = model::explore(make_body());
  log_summary("replay-find", res);
  ASSERT_TRUE(res.failed);
  ASSERT_FALSE(res.trace.empty());

  model::Options opt;
  opt.replay = res.trace;
  const model::Result replayed = model::explore(opt, make_body());
  log_summary("replay-run", replayed);
  EXPECT_TRUE(replayed.failed) << "replaying the failing trace must reproduce the failure";
  EXPECT_EQ(replayed.failure, res.failure);
  EXPECT_FALSE(replayed.history.empty());
}

}  // namespace

// Model-check suite for the runtime control plane (DESIGN.md §13, §14).
//
// BasicControlQueue is the only writer/reader handshake between the server
// threads and the simulation thread: clients post() at any time, the sim
// drains at event boundaries, replies travel back addressed by client id.
// The suite explores every interleaving of posters racing drains and
// proves the mutex-plus-plain-annotation scheme gives
//
//   * batch integrity: every posted command is drained exactly once, and
//     each poster's commands come out in its posting order, no matter how
//     drains interleave with posts;
//   * reply routing: post_result/drain_results delivers every reply to the
//     client it is addressed to, in posting order, and to nobody else.
//
// There is no spin-waiting anywhere: drains racing the posters are bounded,
// and totals are reconciled after the joins, so the DFS never chases an
// unbounded polling loop.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/sync.hpp"
#include "serve/control.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;
using lossburst::serve::BasicControlQueue;
using lossburst::serve::ControlCommand;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

using Queue = BasicControlQueue<ModelSync>;

ControlCommand cmd(std::uint64_t client, std::uint64_t value) {
  ControlCommand c;
  c.verb = ControlCommand::Verb::kAddFlow;
  c.value = value;
  c.client = client;
  return c;
}

// Values drained for one client, in drain order.
std::vector<std::uint64_t> values_for(const std::vector<ControlCommand>& batch,
                                      std::uint64_t client) {
  std::vector<std::uint64_t> v;
  for (const ControlCommand& c : batch) {
    if (c.client == client) v.push_back(c.value);
  }
  return v;
}

// --------------------------------------------------------------------------
// Three posters race the draining sim thread. Drains happen mid-stream (T0
// between the spawns and the joins) and once after the joins; across any
// schedule the union of batches is exactly the posted multiset, with each
// poster's order preserved.

TEST(McControlQueue, PostsNeverLostOrReorderedAcrossDrains) {
  model::Options opt;
  // Lock-acquisition order is the whole schedule space here; an effectively
  // unbounded preemption budget makes the pass exhaustive over it.
  opt.max_preemptions = 8;
  const model::Result res = model::explore(opt, [] {
    Queue q;
    const auto poster = [&q](std::uint64_t client) {
      q.post(cmd(client, 10 * client));
      q.post(cmd(client, 10 * client + 1));
      q.post(cmd(client, 10 * client + 2));
    };
    model::thread p1([&] { poster(1); });
    model::thread p2([&] { poster(2); });
    model::thread p3([&] { poster(3); });
    std::vector<ControlCommand> out;
    q.drain(out);  // mid-stream drains racing the posters
    q.drain(out);
    p1.join();
    p2.join();
    p3.join();
    q.drain(out);  // boundary drain: everything must be in by now
    model::expect(out.size() == 9, "control drain lost or duplicated a command");
    for (std::uint64_t client = 1; client <= 3; ++client) {
      const std::vector<std::uint64_t> vals = values_for(out, client);
      model::expect(vals == std::vector<std::uint64_t>(
                                {10 * client, 10 * client + 1, 10 * client + 2}),
                    "a poster's commands were lost or reordered across drains");
    }
    std::vector<ControlCommand> rest;
    model::expect(q.drain(rest) == 0, "drained queue was not empty");
  });
  log_summary("control-queue/post-drain", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_TRUE(res.complete);
  EXPECT_GE(res.schedules, 10000u);
}

// --------------------------------------------------------------------------
// Reply routing: the sim posts results for two clients while both clients
// drain concurrently (one bounded racing drain each, remainder reconciled
// after the joins). Each client receives exactly its own replies, in order.

TEST(McControlQueue, ResultsRoutedToAddressedClientInOrder) {
  const model::Result res = model::explore([] {
    Queue q;
    std::vector<std::string> got1;
    std::vector<std::string> got2;
    model::thread sim([&q] {
      q.post_result(1, "a1-0");
      q.post_result(2, "a2-0");
      q.post_result(1, "a1-1");
      q.post_result(2, "a2-1");
    });
    model::thread c1([&q, &got1] { q.drain_results(1, got1); });
    // T0 is client 2: one racing drain, then reconcile after the joins.
    q.drain_results(2, got2);
    sim.join();
    c1.join();
    q.drain_results(1, got1);
    q.drain_results(2, got2);
    model::expect(got1 == std::vector<std::string>({"a1-0", "a1-1"}),
                  "client 1 replies lost, reordered, or misrouted");
    model::expect(got2 == std::vector<std::string>({"a2-0", "a2-1"}),
                  "client 2 replies lost, reordered, or misrouted");
  });
  log_summary("control-queue/reply-routing", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

}  // namespace

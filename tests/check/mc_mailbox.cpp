// Model-check suite for the cross-shard mailbox (DESIGN.md §12, §14).
//
// ShardMailbox has no atomics at all — its safety argument is phase
// discipline: producers push only during the run phase, the consumer reads
// and clears only in the drain phase, and the epoch barrier between the two
// is the sole happens-before edge. The plain_read/plain_write annotations
// turn that argument into a checkable property: under ModelSync every
// access feeds a FastTrack-style race detector, so the suite proves
//
//   * the barriered protocol is race-free on EVERY interleaving, and no
//     handoff is lost or reordered across the phase exchange;
//   * an access outside its phase (producer pushing after the barrier,
//     consumer peeking before it) is reported as a concrete racing
//     schedule — the discipline is load-bearing, not decorative.
#include <gtest/gtest.h>

#include <cstdio>

#include "check/sync.hpp"
#include "sim/shard_mailbox.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;
using lossburst::sim::ShardMailbox;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

using Mailbox = ShardMailbox<int, ModelSync>;

// --------------------------------------------------------------------------
// The epoch protocol: two shards exchange records through per-direction
// mailboxes across a phase barrier, two epochs deep. Race-free everywhere,
// and every pushed record arrives exactly once, in push order.

TEST(McMailbox, PhaseExchangeNeverLosesOrReordersHandoffs) {
  model::Options opt;
  opt.max_preemptions = 3;  // deepen interleavings around the barrier
  const model::Result res = model::explore(opt, [] {
    Mailbox to_b(4);  // shard A -> shard B
    Mailbox to_a(4);  // shard B -> shard A
    model::barrier<> phase(2);

    // Each worker: run phase (push into the peer's inbox), barrier, drain
    // phase (read + clear own inbox), barrier, second epoch of the same.
    const auto shard = [&phase](Mailbox& out, Mailbox& in, int base) {
      for (int epoch = 0; epoch < 2; ++epoch) {
        out.push(base + 2 * epoch);
        out.push(base + 2 * epoch + 1);
        phase.arrive_and_wait();
        const int peer_base = (base == 0 ? 100 : 0) + 2 * epoch;
        model::expect(in.size() == 2, "phase handoff lost a record");
        model::expect(!in.empty(), "non-empty mailbox reported empty");
        model::expect(in[0] == peer_base && in[1] == peer_base + 1,
                      "phase handoff reordered records");
        in.clear();
        // Second barrier: the clear must be visible before the peer's next
        // epoch pushes, or epochs would interleave into the same buffer.
        phase.arrive_and_wait();
      }
      model::expect(in.high_water() == 2, "high-water mark missed the peak");
    };
    model::thread a([&] { shard(to_b, to_a, 0); });
    model::thread b([&] { shard(to_a, to_b, 100); });
    a.join();
    b.join();
  });
  log_summary("mailbox/phase-exchange", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  // Exhaustive, and the count is tiny by design: with no conflicting
  // operations anywhere (each mailbox is touched by one thread per phase),
  // sleep-set pruning collapses the whole space to its one equivalence
  // class. That collapse IS the verification result — the suite's
  // deep-interleaving workout lives in HandoffBeacon below, where the
  // beacon's RMWs and the monitor's loads genuinely conflict.
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// The phase exchange observed from outside: each shard bumps a shared
// atomic handoff counter (release) right after its run-phase pushes — the
// pattern the live telemetry layer uses to sample shard progress without
// joining the epoch barriers. A monitor thread samples the counter
// concurrently; every sample must be coherent (monotonically nondecreasing
// across its reads) and bounded by the true handoff count, and the phase
// protocol must stay intact underneath. Unlike the barriered exchange
// above, the counter RMWs and the monitor's loads conflict, so this is the
// suite's deep-interleaving pass.

TEST(McMailbox, HandoffBeaconMonotonicUnderConcurrentMonitor) {
  model::Options opt;
  opt.max_preemptions = 3;
  const model::Result res = model::explore(opt, [] {
    Mailbox to_b(4);
    Mailbox to_a(4);
    model::barrier<> phase(2);
    model::atomic<std::uint64_t> handoffs(0);

    const auto shard = [&phase, &handoffs](Mailbox& out, Mailbox& in, int base) {
      for (int epoch = 0; epoch < 2; ++epoch) {
        out.push(base + epoch);
        handoffs.fetch_add(1, std::memory_order_release);
        phase.arrive_and_wait();
        model::expect(in.size() == 1, "phase handoff lost a record");
        model::expect(in[0] == (base == 0 ? 100 : 0) + epoch,
                      "phase handoff reordered records");
        in.clear();
        phase.arrive_and_wait();
      }
    };
    model::thread a([&] { shard(to_b, to_a, 0); });
    model::thread b([&] { shard(to_a, to_b, 100); });
    model::thread monitor([&handoffs] {
      std::uint64_t prev = 0;
      for (int i = 0; i < 6; ++i) {
        const std::uint64_t seen = handoffs.load(std::memory_order_acquire);
        model::expect(seen >= prev, "handoff beacon went backwards");
        model::expect(seen <= 4, "handoff beacon overshot the push count");
        prev = seen;
      }
    });
    a.join();
    b.join();
    monitor.join();
    model::expect(handoffs.load(std::memory_order_relaxed) == 4,
                  "handoff beacon does not match total pushes");
  });
  log_summary("mailbox/handoff-beacon", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_GE(res.schedules, 10000u);
}

// --------------------------------------------------------------------------
// Misphased accesses are caught as races, with a replayable schedule.

TEST(McMailbox, ProducerPushAfterBarrierIsARace) {
  // Named so the race diagnostic is stable across explore calls (the
  // fallback name is the object's address).
  const auto body = [] {
    Mailbox mb(4);
    model::name(&mb, "mailbox");
    model::barrier<> phase(2);
    model::thread producer([&] {
      mb.push(1);
      phase.arrive_and_wait();
      mb.push(2);  // BUG: run-phase access after the phase flipped
    });
    model::thread consumer([&] {
      phase.arrive_and_wait();
      (void)mb.size();
      mb.clear();
    });
    producer.join();
    consumer.join();
  };
  const model::Result res = model::explore(body);
  log_summary("mailbox/misphased-push", res);
  ASSERT_TRUE(res.failed) << "misphased push was not reported";
  EXPECT_NE(res.failure.find("race"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.trace.empty());

  // The racing schedule replays to the identical diagnosis.
  model::Options replay;
  replay.replay = res.trace;
  const model::Result rep = model::explore(replay, body);
  ASSERT_TRUE(rep.failed);
  EXPECT_EQ(rep.failure, res.failure);
}

TEST(McMailbox, ConsumerPeekBeforeBarrierIsARace) {
  const model::Result res = model::explore([] {
    Mailbox mb(4);
    model::barrier<> phase(2);
    model::thread producer([&] {
      mb.push(1);
      phase.arrive_and_wait();
    });
    model::thread consumer([&] {
      (void)mb.empty();  // BUG: drain-phase access before the barrier
      phase.arrive_and_wait();
      mb.clear();
    });
    producer.join();
    consumer.join();
  });
  log_summary("mailbox/misphased-peek", res);
  ASSERT_TRUE(res.failed) << "misphased peek was not reported";
  EXPECT_NE(res.failure.find("race"), std::string::npos) << res.failure;
}

}  // namespace

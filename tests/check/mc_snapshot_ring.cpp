// Model-check suite for the broadcast snapshot ring (DESIGN.md §13, §14).
//
// Instantiates BasicSnapshotRing with check::ModelSync and explores every
// interleaving (up to the configured bounds) of a writer racing one or two
// independent readers on a deliberately tiny ring, so every publication is
// an overwrite-oldest race:
//
//   * the shipped seqlock protocol never delivers a torn or stale payload —
//     a validated read always returns exactly the record published at the
//     cursor's index;
//   * per-cursor drop accounting is exact: across any schedule, every
//     publication is either delivered to a cursor or counted in that
//     cursor's `dropped`, never both, never neither;
//   * a reader attaching mid-stream (make_cursor racing publish) starts on
//     a stable slot and still accounts for every later publication.
//
// The seeded-bug tests close the loop on the checker itself: each
// SeqlockSeed weakening removes one ordering edge, and the suite proves the
// checker catches the resulting torn read as a concrete failing schedule
// whose decision trace replays to the identical failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>

#include "check/sync.hpp"
#include "obs/live/spsc_ring.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;
using lossburst::obs::live::BasicSnapshotRing;
using lossburst::obs::live::SeqlockSeed;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

// Two-word payload: a torn read shows up as the halves disagreeing; a stale
// one as a value that fails to match the validated index.
struct PairRec {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

template <SeqlockSeed Seed>
using Ring = BasicSnapshotRing<ModelSync, PairRec, Seed>;

constexpr std::uint64_t kBase = 100;

// Drain `c` until empty, checking every delivered record against the seqlock
// contract. Returns the number of records delivered into this cursor.
template <SeqlockSeed Seed>
std::uint64_t drain_checked(const Ring<Seed>& ring, typename Ring<Seed>::Cursor& c) {
  std::uint64_t delivered = 0;
  PairRec out;
  while (ring.poll(c, out) == Ring<Seed>::Poll::kOk) {
    const std::uint64_t idx = c.next - 1;  // poll() just consumed this index
    model::expect(out.a == out.b, "seqlock torn read: payload halves disagree");
    model::expect(out.a == kBase + idx,
                  "seqlock torn read: stale payload for a validated sequence");
    ++delivered;
  }
  return delivered;
}

// The shared scenario: a writer thread publishes `pubs` records into a
// capacity-1 ring (every publication overwrites) while a reader thread
// drains concurrently; T0 parks in join (context switches between the two
// racing threads at a blocked join are free, so the interesting
// writer/reader interleavings fit inside the preemption bound). After the
// joins T0 drains the rest, and the cursor must account for every
// publication exactly once.
template <SeqlockSeed Seed>
void overwrite_race_scenario(int pubs) {
  Ring<Seed> ring;
  ring.configure(1);
  typename Ring<Seed>::Cursor c = ring.make_cursor();
  std::uint64_t delivered = 0;
  model::thread w([&ring, pubs] {
    for (int n = 0; n < pubs; ++n) {
      const std::uint64_t v = kBase + static_cast<std::uint64_t>(n);
      ring.publish(PairRec{v, v});
    }
  });
  model::thread r([&ring, &c, &delivered] { delivered = drain_checked<Seed>(ring, c); });
  w.join();
  r.join();
  delivered += drain_checked<Seed>(ring, c);
  model::expect(delivered + c.dropped == static_cast<std::uint64_t>(pubs),
                "drop accounting: delivered + dropped != published");
  model::expect(c.next == static_cast<std::uint64_t>(pubs),
                "cursor did not land on head after a full drain");
}

// --------------------------------------------------------------------------
// Correct protocol: exhaustive absence of torn reads + exact accounting.

TEST(McSnapshotRing, SeqlockNoTornReadsExhaustive) {
  model::Options opt;
  opt.max_schedules = 150000;  // CI wall-time cap; logged below
  const model::Result res =
      model::explore(opt, [] { overwrite_race_scenario<SeqlockSeed::kNone>(3); });
  log_summary("snapshot-ring/no-torn-reads", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_GE(res.schedules, 10000u) << "scenario too small to be meaningful";
}

// Two independent cursors racing the same writer: drops are charged to the
// lagging cursor alone, and both account for every publication.
TEST(McSnapshotRing, TwoCursorsIndependentDropAccounting) {
  model::Options opt;
  opt.max_schedules = 20000;  // state space is larger; bounded-coverage pass
  const model::Result res = model::explore(opt, [] {
    using R = Ring<SeqlockSeed::kNone>;
    R ring;
    ring.configure(1);
    constexpr int kPubs = 3;
    R::Cursor c1 = ring.make_cursor();
    std::uint64_t d1 = 0;
    model::thread w([&ring] {
      for (int n = 0; n < kPubs; ++n) {
        const std::uint64_t v = kBase + static_cast<std::uint64_t>(n);
        ring.publish(PairRec{v, v});
      }
    });
    model::thread r([&ring, &c1, &d1] { d1 = drain_checked<SeqlockSeed::kNone>(ring, c1); });
    R::Cursor c0 = ring.make_cursor();
    std::uint64_t d0 = drain_checked<SeqlockSeed::kNone>(ring, c0);
    w.join();
    r.join();
    d0 += drain_checked<SeqlockSeed::kNone>(ring, c0);
    d1 += drain_checked<SeqlockSeed::kNone>(ring, c1);
    const std::uint64_t start0 = c0.next - d0 - c0.dropped;  // where make_cursor began
    model::expect(d0 + c0.dropped + start0 == kPubs,
                  "mid-stream cursor lost or double-counted a publication");
    model::expect(d1 + c1.dropped == kPubs,
                  "racing cursor lost or double-counted a publication");
  });
  log_summary("snapshot-ring/two-cursors", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_GE(res.schedules, 10000u);
}

// A reader attaching mid-wrap: make_cursor races publish, then the cursor
// must still see a consistent suffix of the stream.
TEST(McSnapshotRing, AttachMidWrapStartsStable) {
  const model::Result res = model::explore([] {
    using R = Ring<SeqlockSeed::kNone>;
    R ring;
    ring.configure(1);
    constexpr int kPubs = 3;
    model::thread w([&ring] {
      for (int n = 0; n < kPubs; ++n) {
        const std::uint64_t v = kBase + static_cast<std::uint64_t>(n);
        ring.publish(PairRec{v, v});
      }
    });
    R::Cursor c = ring.make_cursor();  // racing the writer mid-wrap
    const std::uint64_t start = c.next;
    model::expect(start <= kPubs, "attach cursor beyond the published stream");
    std::uint64_t delivered = drain_checked<SeqlockSeed::kNone>(ring, c);
    w.join();
    delivered += drain_checked<SeqlockSeed::kNone>(ring, c);
    model::expect(start + delivered + c.dropped == kPubs,
                  "mid-wrap attach lost or double-counted a publication");
  });
  log_summary("snapshot-ring/attach-mid-wrap", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
}

// --------------------------------------------------------------------------
// Seeded bugs: each weakening must be caught as a torn read with a
// replayable trace, proving the checker actually guards the protocol.

template <SeqlockSeed Seed>
void expect_seed_caught(const char* label) {
  const std::function<void()> body = [] { overwrite_race_scenario<Seed>(2); };
  const model::Result res = model::explore(body);
  log_summary(label, res);
  ASSERT_TRUE(res.failed) << "weakened seqlock passed every schedule";
  EXPECT_NE(res.failure.find("seqlock torn read"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.trace.empty());

  // The decision trace replays to the identical failure, with history.
  model::Options replay;
  replay.replay = res.trace;
  const model::Result rep = model::explore(replay, body);
  ASSERT_TRUE(rep.failed) << "failing schedule did not replay";
  EXPECT_EQ(rep.failure, res.failure);
  EXPECT_FALSE(rep.history.empty());
}

TEST(McSnapshotRing, SeedPublishStoresRelaxedCaught) {
  expect_seed_caught<SeqlockSeed::kPublishStoresRelaxed>(
      "snapshot-ring/seed-publish-relaxed");
}

TEST(McSnapshotRing, SeedNoWriterFenceCaught) {
  expect_seed_caught<SeqlockSeed::kNoWriterFence>("snapshot-ring/seed-no-writer-fence");
}

TEST(McSnapshotRing, SeedNoReaderFenceCaught) {
  expect_seed_caught<SeqlockSeed::kNoReaderFence>("snapshot-ring/seed-no-reader-fence");
}

// The flip side of the seeded bugs: demoting ONLY the even seq store is
// provably safe — a reader polls slot n only below an acquired head, and
// the head release store is sequenced after the payload stores, so the
// publication edge it would provide is redundant. The checker proves the
// redundancy exhaustively instead of flagging "relaxed" on pattern.
TEST(McSnapshotRing, SeedEvenStoreRelaxedIsProvablyRedundant) {
  const model::Result res = model::explore(
      [] { overwrite_race_scenario<SeqlockSeed::kEvenStoreRelaxed>(2); });
  log_summary("snapshot-ring/seed-even-store-relaxed", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_TRUE(res.complete);
}

}  // namespace

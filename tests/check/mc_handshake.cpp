// Model-check suite for the epoch barrier handshake (DESIGN.md §12, §14).
//
// EpochHandshake is the protocol the sharded engine's determinism rests on:
// two barriers per epoch, with the drain barrier's completion as the single
// writer of the shared epoch State. The workers below mimic
// ShardCoordinator::epoch_loop exactly — initial arrive_drain, then
// {run-phase mailbox push, arrive_run, drain-phase mailbox read,
// arrive_drain} until done — and the suite proves on every interleaving:
//
//   * the completion is genuinely single-threaded: no schedule lets a
//     worker (or the main thread) touch State while it is being written —
//     the plain-access annotations turn any such overlap into a race;
//   * no epoch's mailbox handoff is lost or reordered: the run barrier
//     fences the writes, the drain barrier fences the clears;
//   * every worker observes the same epoch count and done flag.
//
// The negative test breaks the coordinator's "between runs only" contract
// on state() and must be reported as a race on some schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "check/sync.hpp"
#include "sim/epoch_handshake.hpp"
#include "sim/shard_mailbox.hpp"

namespace model = lossburst::check::model;
using lossburst::check::ModelSync;
using lossburst::sim::EpochHandshake;
using lossburst::sim::ShardMailbox;

namespace {

void log_summary(const char* suite, const model::Result& res) {
  std::printf("[mc] %s: %s\n", suite, res.summary().c_str());
}

using Handshake = EpochHandshake<ModelSync>;
using Mailbox = ShardMailbox<std::uint64_t, ModelSync>;

constexpr std::uint64_t kEpochs = 2;
constexpr std::int64_t kHorizonStep = 100;

// The coordinator's on_drain_complete, reduced to its shape: advance the
// horizon each epoch, flag done after kEpochs run epochs. The initial
// arrive_drain consumes one completion (it computes epoch 1's horizon), so
// done fires at completion kEpochs + 1.
void advance_epoch(Handshake::State& st) {
  ++st.epochs;
  st.horizon_ns += kHorizonStep;
  if (st.epochs > kEpochs) st.done = true;
}

// One shard worker: the epoch_loop pattern verbatim. Pushes
// epoch-stamped records into the peer's inbox during the run phase, checks
// its own inbox in the drain phase.
void epoch_loop(Handshake& hs, Mailbox& out, Mailbox& in, std::uint64_t base) {
  const Handshake::State* st = &hs.arrive_drain();  // initial: compute epoch 1
  std::uint64_t epoch = 0;
  while (!st->done) {
    // Run phase: events strictly before st->horizon_ns append cross-shard
    // messages. Horizon must have advanced for this epoch.
    model::expect(st->horizon_ns == static_cast<std::int64_t>(st->epochs) * kHorizonStep,
                  "epoch horizon out of step with the epoch count");
    out.push(base + epoch);
    hs.arrive_run();
    // Drain phase: the peer's run-phase push must be here, exactly once.
    model::expect(in.size() == 1, "epoch handoff lost or duplicated a record");
    const std::uint64_t peer_base = base == 0 ? 1000 : 0;
    model::expect(in[0] == peer_base + epoch, "epoch handoff delivered a stale record");
    in.clear();
    ++epoch;
    st = &hs.arrive_drain();
  }
  model::expect(epoch == kEpochs, "worker ran the wrong number of epochs");
  model::expect(st->epochs == kEpochs + 1, "done-epoch count disagrees across workers");
}

// --------------------------------------------------------------------------
// The full protocol, exhaustively: single-threaded completion, exact
// handoffs, consistent termination.

TEST(McHandshake, EpochLoopCompletionSingleThreadedAndHandoffsExact) {
  model::Options opt;
  opt.max_preemptions = 3;  // deepen interleavings around the two barriers
  const model::Result res = model::explore(opt, [] {
    Handshake hs(2, advance_epoch);
    Mailbox to_b(2);
    Mailbox to_a(2);
    hs.begin_run();
    model::thread a([&] { epoch_loop(hs, to_b, to_a, 0); });
    model::thread b([&] { epoch_loop(hs, to_a, to_b, 1000); });
    a.join();
    b.join();
    // Between runs (workers joined) the main thread may read State freely.
    model::expect(hs.state().done, "handshake did not finish done");
    model::expect(hs.state().epochs == kEpochs + 1, "final epoch count wrong");
  });
  log_summary("handshake/epoch-loop", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  // Exhaustive, and the count is tiny by design: barrier arrivals commute
  // and the completion is the only writer of State, so sleep-set pruning
  // collapses the space to its one equivalence class. That collapse IS the
  // verification result — the suite's deep-interleaving workout lives in
  // EpochBeacon below, where the completion's stores and the observer's
  // loads genuinely conflict.
  EXPECT_TRUE(res.complete);
}

// --------------------------------------------------------------------------
// Progress observation from outside the barriers: the drain completion
// publishes the epoch count to an atomic beacon (release) — the pattern the
// coordinator uses to expose progress to the telemetry layer, which never
// joins the epoch barriers. Two concurrent observers (two telemetry
// clients) sample the beacon; coherence requires each client's reads to be
// monotonically nondecreasing and bounded by the true completion count.
// The completion's stores execute atomically with the final barrier
// arrival, so the coverage here is load-value branching: every placement
// of every sample against the store history, independently per client —
// this is the suite's deep pass.

TEST(McHandshake, EpochBeaconMonotonicUnderConcurrentObserver) {
  model::Options opt;
  opt.max_preemptions = 3;
  const model::Result res = model::explore(opt, [] {
    model::atomic<std::uint64_t> beacon(0);
    Handshake hs(2, [&beacon](Handshake::State& st) {
      advance_epoch(st);
      beacon.store(st.epochs, std::memory_order_release);
    });
    hs.begin_run();
    model::thread a([&hs] {
      const Handshake::State* st = &hs.arrive_drain();
      while (!st->done) {
        hs.arrive_run();
        st = &hs.arrive_drain();
      }
    });
    model::thread b([&hs] {
      const Handshake::State* st = &hs.arrive_drain();
      while (!st->done) {
        hs.arrive_run();
        st = &hs.arrive_drain();
      }
    });
    const auto observe = [&beacon](int samples) {
      std::uint64_t prev = 0;
      for (int i = 0; i < samples; ++i) {
        const std::uint64_t seen = beacon.load(std::memory_order_acquire);
        model::expect(seen >= prev, "epoch beacon went backwards");
        model::expect(seen <= kEpochs + 1, "epoch beacon overshot the completion count");
        prev = seen;
      }
    };
    model::thread obs1([&observe] { observe(7); });
    model::thread obs2([&observe] { observe(6); });
    a.join();
    b.join();
    obs1.join();
    obs2.join();
    model::expect(beacon.load(std::memory_order_relaxed) == kEpochs + 1,
                  "final beacon value does not match the completion count");
  });
  log_summary("handshake/epoch-beacon", res);
  ASSERT_FALSE(res.failed) << res.failure << "\n" << res.history;
  EXPECT_GE(res.schedules, 10000u);
}

// --------------------------------------------------------------------------
// state() is documented "main thread, between runs only (workers parked)".
// Reading it mid-run races the drain completion's State write on some
// schedule, and the checker must say so.

TEST(McHandshake, StateReadMidRunIsARace) {
  const model::Result res = model::explore([] {
    Handshake hs(2, advance_epoch);
    hs.begin_run();
    model::thread a([&hs] {
      const Handshake::State* st = &hs.arrive_drain();
      while (!st->done) {
        hs.arrive_run();
        st = &hs.arrive_drain();
      }
    });
    model::thread b([&hs] {
      const Handshake::State* st = &hs.arrive_drain();
      while (!st->done) {
        hs.arrive_run();
        st = &hs.arrive_drain();
      }
    });
    (void)hs.state();  // BUG: mid-run read while completions are writing
    a.join();
    b.join();
  });
  log_summary("handshake/state-mid-run", res);
  ASSERT_TRUE(res.failed) << "mid-run state() read was not reported";
  EXPECT_NE(res.failure.find("race"), std::string::npos) << res.failure;
  ASSERT_FALSE(res.trace.empty());
}

}  // namespace

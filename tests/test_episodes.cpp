#include <gtest/gtest.h>

#include "analysis/episodes.hpp"

namespace lossburst::analysis {
namespace {

TEST(EpisodesTest, EmptyTrace) {
  EXPECT_TRUE(group_episodes({}, 0.1).empty());
  const auto s = episode_stats({}, 0.1);
  EXPECT_EQ(s.episode_count, 0u);
}

TEST(EpisodesTest, SingleDropSingleEpisode) {
  const auto eps = group_episodes({1.0}, 0.1);
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0].drops, 1u);
  EXPECT_DOUBLE_EQ(eps[0].duration_s(), 0.0);
}

TEST(EpisodesTest, GapSplitsEpisodes) {
  // Two bursts of 3 drops, 1 s apart.
  const std::vector<double> t = {0.0, 0.01, 0.02, 1.0, 1.01, 1.02};
  const auto eps = group_episodes(t, 0.1);
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].drops, 3u);
  EXPECT_EQ(eps[1].drops, 3u);
  EXPECT_DOUBLE_EQ(eps[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(eps[0].end_s, 0.02);
  EXPECT_DOUBLE_EQ(eps[1].start_s, 1.0);
}

TEST(EpisodesTest, GapExactlyAtThresholdStaysTogether) {
  const auto eps = group_episodes({0.0, 0.1}, 0.1);
  EXPECT_EQ(eps.size(), 1u);  // strictly-greater splits
}

TEST(EpisodesTest, UnsortedInputHandled) {
  const auto eps = group_episodes({1.0, 0.0, 1.01}, 0.1);
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].drops, 1u);
  EXPECT_EQ(eps[1].drops, 2u);
}

TEST(EpisodesTest, StatsSummary) {
  const std::vector<double> t = {0.0, 0.01, /*gap*/ 2.0, /*gap*/ 5.0, 5.02, 5.04};
  const auto s = episode_stats(t, 0.5);
  EXPECT_EQ(s.episode_count, 3u);
  EXPECT_EQ(s.total_drops, 6u);
  EXPECT_DOUBLE_EQ(s.mean_drops, 2.0);
  EXPECT_EQ(s.max_drops, 3u);
  EXPECT_NEAR(s.max_duration_s, 0.04, 1e-12);
  // Spacing: (2.0 - 0.0) and (5.0 - 2.0) -> mean 2.5.
  EXPECT_DOUBLE_EQ(s.mean_spacing_s, 2.5);
  // 5 of 6 drops sit in multi-drop episodes.
  EXPECT_NEAR(s.fraction_in_bursts, 5.0 / 6.0, 1e-12);
}

TEST(EpisodesTest, AllIsolatedDrops) {
  const auto s = episode_stats({0.0, 1.0, 2.0, 3.0}, 0.1);
  EXPECT_EQ(s.episode_count, 4u);
  EXPECT_DOUBLE_EQ(s.fraction_in_bursts, 0.0);
  EXPECT_DOUBLE_EQ(s.mean_spacing_s, 1.0);
}

}  // namespace
}  // namespace lossburst::analysis

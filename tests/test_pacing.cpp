// TCP Pacing: identical congestion control, evenly spaced emission. These
// tests verify the §4.1 premise (arrival patterns differ) and the headline
// consequence (paced flows lose to window-based flows in competition).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "util/stats.hpp"

namespace lossburst::tcp {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

/// Tracks inter-arrival gaps of data packets at the bottleneck egress.
class GapTracer final : public net::QueueTracer {
 public:
  explicit GapTracer(sim::Simulator& sim) : sim_(sim) {}
  void on_drop(TimePoint, const net::Packet&, std::size_t) override {}
  void on_enqueue(TimePoint t, const net::Packet& pkt, std::size_t) override {
    if (pkt.is_ack) return;
    if (last_.ns() >= 0) gaps_us.push_back((t - last_).micros());
    last_ = t;
  }
  std::vector<double> gaps_us;

 private:
  sim::Simulator& sim_;
  TimePoint last_{-1};
};

struct Harness {
  sim::Simulator sim;
  net::Network net{sim};
  net::Dumbbell bell;
  explicit Harness(std::uint64_t seed, std::size_t flows, Duration access) : sim(seed) {
    net::DumbbellConfig cfg;
    cfg.flow_count = flows;
    cfg.access_delays.assign(flows, access);
    bell = net::build_dumbbell(net, cfg);
  }
};

TEST(PacingTest, PacedArrivalsAreSmooth) {
  // One paced flow in congestion avoidance: inter-arrival gaps at the
  // bottleneck should cluster near srtt/cwnd with a low CoV.
  Harness h(1, 1, 24_ms);
  GapTracer tracer(h.sim);
  h.bell.bottleneck_fwd->queue().set_tracer(&tracer);
  TcpSender::Params sp;
  sp.emission = EmissionMode::kPaced;
  sp.initial_ssthresh = 64;
  sp.pacing_rtt_hint = 50_ms;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 5_s);
  tracer.gaps_us.clear();  // discard startup
  h.sim.run_until(TimePoint::zero() + 10_s);
  ASSERT_GT(tracer.gaps_us.size(), 100u);
  EXPECT_LT(util::coefficient_of_variation(tracer.gaps_us), 0.7);
}

TEST(PacingTest, WindowBurstArrivalsAreOnOff) {
  // Same scenario with window-based emission: gaps are bimodal —
  // back-to-back inside a flight, idle between flights — so the CoV is high.
  Harness h(1, 1, 24_ms);
  GapTracer tracer(h.sim);
  h.bell.bottleneck_fwd->queue().set_tracer(&tracer);
  TcpSender::Params sp;
  sp.emission = EmissionMode::kWindowBurst;
  sp.initial_ssthresh = 64;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 1_s);
  // While cwnd << BDP the flow is ACK-clocked in bursts.
  ASSERT_GT(tracer.gaps_us.size(), 50u);
  EXPECT_GT(util::coefficient_of_variation(tracer.gaps_us), 1.0);
}

TEST(PacingTest, PacedUsesIdenticalCongestionControl) {
  // The control variables respond to loss the same way: after a congestion
  // event both have ssthresh = flight/2. Spot-check parameters only.
  TcpSender::Params a;
  a.emission = EmissionMode::kPaced;
  TcpSender::Params b;
  b.emission = EmissionMode::kWindowBurst;
  EXPECT_EQ(a.variant, b.variant);
  EXPECT_DOUBLE_EQ(a.initial_cwnd, b.initial_cwnd);
}

TEST(PacingTest, PacedCompletesBoundedTransfer) {
  Harness h(2, 1, 24_ms);
  TcpSender::Params sp;
  sp.emission = EmissionMode::kPaced;
  sp.total_segments = 3000;
  sp.pacing_rtt_hint = 50_ms;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  bool done = false;
  flow.sender().set_on_complete([&](TimePoint) { done = true; });
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 120_s);
  EXPECT_TRUE(done);
  EXPECT_EQ(flow.receiver().rcv_next(), 3000u);
}

TEST(PacingTest, PacedLosesToWindowBasedInCompetition) {
  // The paper's Figure 7 effect, in miniature: equal numbers of paced and
  // window-based flows share a bottleneck; the paced class ends up with
  // less aggregate throughput.
  Harness h(3, 8, 24_ms);
  std::vector<std::unique_ptr<TcpFlow>> flows;
  util::Rng rng(99);
  for (std::size_t i = 0; i < 8; ++i) {
    TcpSender::Params sp;
    sp.emission = i < 4 ? EmissionMode::kPaced : EmissionMode::kWindowBurst;
    sp.pacing_rtt_hint = 50_ms;
    flows.push_back(std::make_unique<TcpFlow>(h.sim, static_cast<net::FlowId>(i + 1),
                                              h.bell.fwd_routes[i], h.bell.rev_routes[i], sp));
    flows.back()->sender().start(TimePoint::zero() +
                                 rng.uniform_duration(Duration::zero(), 200_ms));
  }
  h.sim.run_until(TimePoint::zero() + 40_s);
  double paced = 0.0, window = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    const double b = static_cast<double>(flows[i]->receiver().bytes_received());
    (i < 4 ? paced : window) += b;
  }
  EXPECT_LT(paced, window);
}

TEST(PacingTest, PacedSeesMoreCongestionEventsPerByte) {
  // Mechanism check for the unfairness: evenly spaced packets sample the
  // bursty loss process more often, so the paced class observes more
  // congestion events relative to the data it moves.
  Harness h(4, 8, 24_ms);
  std::vector<std::unique_ptr<TcpFlow>> flows;
  util::Rng rng(5);
  for (std::size_t i = 0; i < 8; ++i) {
    TcpSender::Params sp;
    sp.emission = i < 4 ? EmissionMode::kPaced : EmissionMode::kWindowBurst;
    sp.pacing_rtt_hint = 50_ms;
    flows.push_back(std::make_unique<TcpFlow>(h.sim, static_cast<net::FlowId>(i + 1),
                                              h.bell.fwd_routes[i], h.bell.rev_routes[i], sp));
    flows.back()->sender().start(TimePoint::zero() +
                                 rng.uniform_duration(Duration::zero(), 200_ms));
  }
  h.sim.run_until(TimePoint::zero() + 40_s);
  double paced_events = 0.0, window_events = 0.0;
  double paced_bytes = 0.0, window_bytes = 0.0;
  for (std::size_t i = 0; i < 8; ++i) {
    const auto events = static_cast<double>(flows[i]->sender().stats().congestion_events);
    const auto bytes = static_cast<double>(flows[i]->receiver().bytes_received());
    if (i < 4) {
      paced_events += events;
      paced_bytes += bytes;
    } else {
      window_events += events;
      window_bytes += bytes;
    }
  }
  ASSERT_GT(paced_bytes, 0.0);
  ASSERT_GT(window_bytes, 0.0);
  EXPECT_GT(paced_events / paced_bytes, window_events / window_bytes);
}

}  // namespace
}  // namespace lossburst::tcp

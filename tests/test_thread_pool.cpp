#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "util/thread_pool.hpp"

namespace lossburst::util {
namespace {

TEST(ThreadPoolTest, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&hits](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForZeroTasks) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForMoreIndicesThanWorkers) {
  // Chunked dispatch: 2 workers must still cover all 1000 indices exactly
  // once, regardless of how the atomic counter interleaves.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("index 37 failed");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForUsableAfterException) {
  // A throwing sweep must not wedge the pool: a follow-up sweep still works.
  ThreadPool pool(2);
  try {
    pool.parallel_for(10, [](std::size_t) { throw std::runtime_error("boom"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> counter{0};
  pool.parallel_for(50, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor joins; queued tasks may or may not all run before stop is
    // observed, but joining must not hang or crash.
  }
  SUCCEED();
}

}  // namespace
}  // namespace lossburst::util

#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

namespace lossburst::util {
namespace {

TEST(CsvWriterTest, SimpleRow) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row("a", 1, 2.5);
  EXPECT_EQ(out.str(), "a,1,2.5\n");
}

TEST(CsvWriterTest, Header) {
  std::ostringstream out;
  CsvWriter w(out);
  w.header({"x", "y"});
  EXPECT_EQ(out.str(), "x,y\n");
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row("a,b", "say \"hi\"", "line\nbreak");
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriterTest, RowVector) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row_vector({1.0, 2.5, -3.0});
  EXPECT_EQ(out.str(), "1,2.5,-3\n");
}

TEST(CsvWriterTest, MixedTypes) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row(std::string("s"), 42u, true);
  EXPECT_EQ(out.str(), "s,42,1\n");
}

TEST(AsciiChartTest, RendersAllSeriesGlyphs) {
  ChartSeries a{"up", {0, 1, 2}, {0, 1, 2}, '*'};
  ChartSeries b{"down", {0, 1, 2}, {2, 1, 0}, 'o'};
  ChartOptions opts;
  opts.title = "demo";
  const std::string chart = render_chart({a, b}, opts);
  EXPECT_NE(chart.find("demo"), std::string::npos);
  EXPECT_NE(chart.find('*'), std::string::npos);
  EXPECT_NE(chart.find('o'), std::string::npos);
  EXPECT_NE(chart.find("legend"), std::string::npos);
}

TEST(AsciiChartTest, EmptySeries) {
  const std::string chart = render_chart({}, ChartOptions{});
  EXPECT_NE(chart.find("(no data)"), std::string::npos);
}

TEST(AsciiChartTest, LogScaleClampsNonPositive) {
  ChartSeries s{"s", {0, 1, 2}, {0.0, 1e-3, 1.0}, '*'};
  ChartOptions opts;
  opts.log_y = true;
  // Must not crash or produce inf; zero clamps to the floor.
  const std::string chart = render_chart({s}, opts);
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiChartTest, ConstantSeriesDoesNotDivideByZero) {
  ChartSeries s{"flat", {0, 1, 2, 3}, {5, 5, 5, 5}, '*'};
  const std::string chart = render_chart({s}, ChartOptions{});
  EXPECT_NE(chart.find('*'), std::string::npos);
}

TEST(AsciiBarsTest, RendersLabelsAndValues) {
  const std::string bars =
      render_bars({{"alpha", 10.0}, {"beta", 5.0}}, 20, "my bars");
  EXPECT_NE(bars.find("my bars"), std::string::npos);
  EXPECT_NE(bars.find("alpha"), std::string::npos);
  EXPECT_NE(bars.find("beta"), std::string::npos);
  EXPECT_NE(bars.find('#'), std::string::npos);
}

TEST(AsciiBarsTest, AllZeroValues) {
  const std::string bars = render_bars({{"z", 0.0}}, 20);
  EXPECT_NE(bars.find('z'), std::string::npos);
}

}  // namespace
}  // namespace lossburst::util

// End-to-end TCP behaviour over a real simulated path: slow start, loss
// recovery, fairness, completion, ECN response, receiver semantics.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

namespace lossburst::tcp {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

struct Harness {
  sim::Simulator sim;
  net::Network net{sim};
  net::Dumbbell bell;

  explicit Harness(std::uint64_t seed, std::size_t flows, Duration access,
                   double buffer_frac = 1.0, net::QueueKind queue = net::QueueKind::kDropTail)
      : sim(seed) {
    net::DumbbellConfig cfg;
    cfg.flow_count = flows;
    cfg.access_delays.assign(flows, access);
    cfg.buffer_bdp_fraction = buffer_frac;
    cfg.queue = queue;
    bell = net::build_dumbbell(net, cfg);
  }
};

TEST(TcpTest, TransfersAllDataReliably) {
  Harness h(1, 1, 24_ms);
  TcpSender::Params sp;
  sp.total_segments = 5000;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  bool completed = false;
  flow.sender().set_on_complete([&](TimePoint) { completed = true; });
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 60_s);
  EXPECT_TRUE(completed);
  EXPECT_TRUE(flow.sender().completed());
  EXPECT_EQ(flow.receiver().rcv_next(), 5000u);
  // Every payload byte delivered exactly once (in order).
  EXPECT_EQ(flow.receiver().bytes_received(), 5000u * net::kMssBytes);
}

TEST(TcpTest, SlowStartDoublesPerRtt) {
  Harness h(2, 1, 24_ms);  // RTT 50ms, no competition
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0]);
  flow.sender().start(TimePoint::zero());
  // After ~4 RTT of slow start starting from 2: cwnd ~ 2^(k+1).
  h.sim.run_until(TimePoint::zero() + 220_ms);  // ~4.2 RTT
  EXPECT_GE(flow.sender().cwnd(), 16.0);
  EXPECT_LE(flow.sender().cwnd(), 64.0);
}

TEST(TcpTest, LossTriggersFastRetransmitNotTimeout) {
  // Small buffer forces a modest loss episode once the window exceeds
  // BDP + buffer; NewReno should handle it without an RTO.
  Harness h(3, 1, 10_ms, 1.0);
  TcpSender::Params sp;
  sp.initial_ssthresh = 64;  // leave slow start before overwhelming the path
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 30_s);
  EXPECT_GT(flow.sender().stats().fast_retransmits, 0u);
  EXPECT_EQ(flow.sender().stats().timeouts, 0u);
}

TEST(TcpTest, CongestionEventHalvesWindow) {
  Harness h(4, 1, 10_ms);
  TcpSender::Params sp;
  sp.initial_ssthresh = 64;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  double max_cwnd_seen = 0.0;
  sim::PeriodicProcess sampler(h.sim, 1_ms, [&] {
    max_cwnd_seen = std::max(max_cwnd_seen, flow.sender().cwnd());
  });
  sampler.start();
  h.sim.run_until(TimePoint::zero() + 30_s);
  ASSERT_GT(flow.sender().stats().congestion_events, 0u);
  // ssthresh after the last event is about half the peak in-flight.
  EXPECT_LT(flow.sender().ssthresh(), max_cwnd_seen);
}

TEST(TcpTest, UtilizesBottleneckInSteadyState) {
  Harness h(5, 1, 10_ms);  // RTT 22ms: CA ramps fast enough to judge
  TcpSender::Params sp;
  sp.initial_ssthresh = 300;  // skip the giant overshoot
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 30_s);
  const double goodput_mbps = static_cast<double>(flow.receiver().bytes_received()) * 8.0 /
                              30.0 / 1e6;
  EXPECT_GT(goodput_mbps, 70.0);  // of 96 Mbps payload capacity
}

TEST(TcpTest, TwoFlowsShareFairly) {
  Harness h(6, 2, 24_ms);
  TcpSender::Params sp;
  sp.initial_ssthresh = 200;
  TcpFlow f1(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  TcpFlow f2(h.sim, 2, h.bell.fwd_routes[1], h.bell.rev_routes[1], sp);
  f1.sender().start(TimePoint::zero());
  f2.sender().start(TimePoint::zero() + 100_ms);
  h.sim.run_until(TimePoint::zero() + 60_s);
  const double g1 = static_cast<double>(f1.receiver().bytes_received());
  const double g2 = static_cast<double>(f2.receiver().bytes_received());
  EXPECT_GT(g1, 0.0);
  EXPECT_GT(g2, 0.0);
  // Long-run share within 3x of each other (NewReno with equal RTTs).
  EXPECT_LT(std::max(g1, g2) / std::min(g1, g2), 3.0);
}

TEST(TcpTest, RenoVsNewRenoOnMultiLossWindow) {
  // Both variants must survive multi-loss windows; NewReno avoids some
  // timeouts that classic Reno incurs. At minimum, both complete.
  for (CcVariant v : {CcVariant::kReno, CcVariant::kNewReno}) {
    Harness h(7, 1, 10_ms, 0.25);
    TcpSender::Params sp;
    sp.variant = v;
    sp.total_segments = 20000;
    TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
    flow.sender().start(TimePoint::zero());
    h.sim.run_until(TimePoint::zero() + 120_s);
    EXPECT_TRUE(flow.sender().completed()) << "variant " << static_cast<int>(v);
  }
}

TEST(TcpTest, RtoRecoversFromTotalBlackout) {
  // A 1-packet bottleneck buffer plus cold start drops nearly everything;
  // the connection must still finish via timeouts.
  sim::Simulator sim(8);
  net::Network net(sim);
  net::DumbbellConfig cfg;
  cfg.flow_count = 1;
  cfg.access_delays = {10_ms};
  cfg.buffer_pkts = 2;
  net::Dumbbell bell = net::build_dumbbell(net, cfg);
  TcpSender::Params sp;
  sp.total_segments = 300;
  TcpFlow flow(sim, 1, bell.fwd_routes[0], bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  sim.run_until(TimePoint::zero() + 120_s);
  EXPECT_TRUE(flow.sender().completed());
}

TEST(TcpTest, EcnResponseWithoutLoss) {
  // RED-ECN bottleneck: sender should reduce on marks, (almost) never see
  // actual drops, and still deliver everything.
  Harness h(9, 1, 10_ms, 1.0, net::QueueKind::kRedEcn);
  TcpSender::Params sp;
  sp.ecn_enabled = true;
  sp.initial_ssthresh = 150;   // below the path BDP: no cold-start overshoot
  sp.total_segments = 100000;  // long enough to push into the RED band
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 60_s);
  EXPECT_TRUE(flow.sender().completed());
  EXPECT_GT(flow.sender().stats().ecn_responses, 0u);
  // Steady state must be mark-driven, not timeout-driven.
  EXPECT_EQ(flow.sender().stats().timeouts, 0u);
}

TEST(TcpTest, EcnResponseAtMostOncePerRtt) {
  Harness h(10, 1, 24_ms, 1.0, net::QueueKind::kRedEcn);
  TcpSender::Params sp;
  sp.ecn_enabled = true;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 10_s);
  // 10s / 50ms RTT = 200 RTTs; responses cannot exceed one per RTT.
  EXPECT_LE(flow.sender().stats().ecn_responses, 210u);
}

TEST(TcpTest, VegasKeepsQueueShort) {
  Harness h(11, 1, 24_ms);
  TcpSender::Params sp;
  sp.variant = CcVariant::kVegas;
  sp.initial_ssthresh = 100;  // slow start handoff to delay control
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 30_s);
  // Vegas targets alpha..beta packets of queueing: far below the BDP-sized
  // buffer a loss-based flow would fill.
  EXPECT_LT(h.bell.bottleneck_fwd->queue().len_packets(), 50u);
  EXPECT_EQ(flow.sender().stats().timeouts, 0u);
}

TEST(TcpReceiverTest, DelayedAckHalvesAckRate) {
  Harness h(12, 1, 10_ms);
  TcpSender::Params sp;
  sp.total_segments = 2000;
  sp.initial_ssthresh = 64;  // stay below the BDP: loss-free, clean counting
  TcpReceiver::Params rp;
  rp.delayed_ack = true;
  TcpFlow flow(h.sim, 1, h.bell.fwd_routes[0], h.bell.rev_routes[0], sp, rp);
  flow.sender().start(TimePoint::zero());
  h.sim.run_until(TimePoint::zero() + 60_s);
  ASSERT_TRUE(flow.sender().completed());
  EXPECT_EQ(flow.sender().stats().congestion_events, 0u);
  // Roughly one ACK per two segments (plus delack-timer stragglers).
  EXPECT_LT(flow.receiver().acks_sent(), 1300u);
  EXPECT_GT(flow.receiver().acks_sent(), 900u);
}

TEST(TcpReceiverTest, OutOfOrderBufferedAndDelivered) {
  sim::Simulator sim(13);
  TcpReceiver recv(sim, 1);
  // Deliver 0, 2, 3 (hole at 1), then 1.
  std::uint64_t delivered = 0;
  recv.set_on_data([&](std::uint64_t b) { delivered += b; });
  const net::Route* empty_route = nullptr;
  class AckSink final : public net::Endpoint {
   public:
    int acks = 0;
    net::SeqNum last_ack = 0;
    void receive(const net::Packet& p, const net::PacketOptions*) override {
      ++acks;
      last_ack = p.ack_seq;
    }
  } ack_sink;
  static const net::Route kEmpty;
  empty_route = &kEmpty;
  recv.connect(empty_route, &ack_sink);

  auto data = [&](net::SeqNum s) {
    net::Packet p;
    p.flow = 1;
    p.seq = s;
    p.size_bytes = net::kDataPacketBytes;
    recv.receive(p, nullptr);
  };
  data(0);
  EXPECT_EQ(ack_sink.last_ack, 1u);
  data(2);
  EXPECT_EQ(ack_sink.last_ack, 1u);  // dup ack
  data(3);
  EXPECT_EQ(ack_sink.last_ack, 1u);  // dup ack
  data(1);
  EXPECT_EQ(ack_sink.last_ack, 4u);  // hole filled, cumulative jump
  EXPECT_EQ(recv.rcv_next(), 4u);
  EXPECT_EQ(delivered, 4u * net::kMssBytes);
  EXPECT_EQ(ack_sink.acks, 4);
}

TEST(TcpReceiverTest, DuplicateSegmentReAcked) {
  sim::Simulator sim(14);
  TcpReceiver recv(sim, 1);
  class AckSink final : public net::Endpoint {
   public:
    int acks = 0;
    void receive(const net::Packet&, const net::PacketOptions*) override { ++acks; }
  } ack_sink;
  static const net::Route kEmpty;
  recv.connect(&kEmpty, &ack_sink);
  for (int rep = 0; rep < 3; ++rep) {
    net::Packet p;
    p.flow = 1;
    p.seq = 0;
    p.size_bytes = net::kDataPacketBytes;
    recv.receive(p, nullptr);
  }
  EXPECT_EQ(recv.rcv_next(), 1u);
  EXPECT_EQ(ack_sink.acks, 3);  // old segments still acknowledged
  EXPECT_EQ(recv.bytes_received(), net::kMssBytes);
}

TEST(TcpTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    Harness h(seed, 4, 24_ms);
    std::vector<std::unique_ptr<TcpFlow>> flows;
    for (std::size_t i = 0; i < 4; ++i) {
      flows.push_back(std::make_unique<TcpFlow>(h.sim, static_cast<net::FlowId>(i + 1),
                                                h.bell.fwd_routes[i], h.bell.rev_routes[i]));
      // Seed-dependent staggering so different seeds genuinely differ.
      flows.back()->sender().start(TimePoint::zero() +
                                   h.sim.rng().uniform_duration(Duration::zero(), 500_ms));
    }
    h.sim.run_until(TimePoint::zero() + 10_s);
    std::vector<std::uint64_t> sig;
    for (auto& f : flows) {
      sig.push_back(f->sender().stats().segments_sent);
      sig.push_back(f->receiver().bytes_received());
      sig.push_back(f->sender().stats().congestion_events);
    }
    return sig;
  };
  EXPECT_EQ(run(77), run(77));
  EXPECT_NE(run(77), run(78));
}

}  // namespace
}  // namespace lossburst::tcp

// Death tests for the debug invariant layer (DESIGN.md §9): each corrupted
// state must abort with a diagnostic in instrumented builds, and the macro
// must compile to nothing (operands unevaluated) when invariants are off.
//
// The death tests GTEST_SKIP in uninstrumented (Release/MinSizeRel) builds:
// there the same corruptions are deliberately unchecked — that is the
// zero-overhead half of the contract, covered by InvariantMacroTest and the
// bench-smoke allocation gate.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "net/network.hpp"
#include "net/packet_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/invariant.hpp"

namespace lossburst {
namespace {

using namespace util::literals;
using util::Duration;
using util::TimePoint;

// Mirror of EventHandle's {queue*, slot, gen} layout, for forging corrupted
// handles via std::bit_cast (legal: both sides are trivially copyable).
struct HandleBits {
  void* q;
  std::uint32_t slot;
  std::uint32_t gen;
};
static_assert(sizeof(HandleBits) == sizeof(sim::EventHandle));

#define SKIP_UNLESS_INSTRUMENTED()                                        \
  if (!util::kInvariantsEnabled)                                          \
  GTEST_SKIP() << "invariants compiled out in this build type "           \
               << "(LOSSBURST_INVARIANTS_ENABLED=0)"

TEST(InvariantMacroTest, ReleaseBuildDoesNotEvaluateOperands) {
  if (util::kInvariantsEnabled) {
    GTEST_SKIP() << "instrumented build: the macro is live here";
  }
  int evaluations = 0;
  // In uninstrumented builds the condition sits under sizeof() — "used"
  // for warning purposes, never executed. A live macro would abort (the
  // condition is false once evaluated).
  LOSSBURST_INVARIANT(++evaluations < 0, "must never evaluate");
  EXPECT_EQ(evaluations, 0);
}

TEST(InvariantMacroTest, PassingConditionIsSilent) {
  LOSSBURST_INVARIANT(2 + 2 == 4, "arithmetic still works");
  SUCCEED();
}

TEST(EventQueueInvariantDeathTest, NonMonotoneDispatchAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  sim::EventQueue q;
  (void)q.schedule(TimePoint::zero() + 100_ms, [] {});
  (void)q.pop_and_run();
  // Nothing stops a caller from scheduling into the past on a raw queue;
  // the dispatch-order watermark must catch it at pop time.
  (void)q.schedule(TimePoint::zero() + 50_ms, [] {});
  EXPECT_DEATH((void)q.pop_and_run(), "went backwards");
}

TEST(EventQueueInvariantDeathTest, CorruptedHandleGenerationAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  sim::EventQueue q;
  sim::EventHandle h = q.schedule(TimePoint::zero() + 1_ms, [] {});

  // EventHandle is a trivially-copyable {queue*, slot, gen} token; corrupt
  // the generation to one the slot has never issued (a real handle's can
  // only trail the slot's).
  auto bits = std::bit_cast<HandleBits>(h);
  bits.gen += 7;
  h = std::bit_cast<sim::EventHandle>(bits);
  EXPECT_DEATH((void)h.pending(), "generation exceeds");
}

TEST(EventQueueInvariantDeathTest, OutOfRangeSlotIdAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  sim::EventQueue q;
  sim::EventHandle h = q.schedule(TimePoint::zero() + 1_ms, [] {});
  auto bits = std::bit_cast<HandleBits>(h);
  bits.slot = 0x7fff'0000u;  // far beyond any pool this test grows
  h = std::bit_cast<sim::EventHandle>(bits);
  EXPECT_DEATH((void)h.pending(), "out of range");
}

TEST(SimulatorGuardTest, SchedulingIntoThePastThrows) {
  // The Simulator rejects past scheduling at the API boundary in every
  // build type; the EventQueue's dispatch-watermark invariant (death test
  // above) is the debug backstop for callers that bypass this guard.
  sim::Simulator sim(1);
  bool checked = false;
  sim.at(TimePoint::zero() + 10_ms, [&] {
    checked = true;
    EXPECT_THROW((void)sim.at(TimePoint::zero() + 5_ms, [] {}), std::logic_error);
  });
  (void)sim.run();
  EXPECT_TRUE(checked);
}

TEST(PacketPoolInvariantDeathTest, DoubleReleaseAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  net::PacketPool pool;
  const net::PacketHandle h = pool.acquire();
  pool.release(h);
  EXPECT_DEATH(pool.release(h), "double free");
}

TEST(PacketPoolInvariantDeathTest, StaleDereferenceAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  net::PacketPool pool;
  const net::PacketHandle h = pool.acquire();
  pool.release(h);
  EXPECT_DEATH((void)pool[h], "stale or corrupted");
}

TEST(NetworkInvariantDeathTest, LeakedHandleAtTeardownAborts) {
  SKIP_UNLESS_INSTRUMENTED();
  EXPECT_DEATH(
      {
        sim::Simulator sim(1);
        net::Network network(sim);
        // Materialize a packet that no link ever holds, then let the
        // Network destructor run the conservation sweep.
        (void)network.pool().acquire();
      },
      "conservation violated");
}

TEST(NetworkInvariantTest, BalancedPoolTearsDownCleanly) {
  sim::Simulator sim(1);
  net::Network network(sim);
  const net::PacketHandle h = network.pool().acquire();
  network.pool().release(h);
  network.debug_check_conservation();  // quiescent point: nothing live
  SUCCEED();
}

// ---------------------------------------------------------------------------
// PacketPool conservation across link-down events (DESIGN.md §10): a flap
// must never strand a pool handle, whichever way it treats in-flight
// packets. kDrop releases them through the normal drop path; kPark freezes
// them in the flight FIFO (still "held by a link" for the conservation
// sweep) and replays them on the up-edge.

class CountingSink final : public net::Endpoint {
 public:
  void receive(const net::Packet&, const net::PacketOptions*) override { ++delivered; }
  std::size_t delivered = 0;
};

void run_flap_conservation(fault::DownPolicy policy) {
  sim::Simulator sim;
  net::Network network(sim);
  // 50 ms propagation keeps packets in flight long after serialization, so
  // the down-edge at 3 ms catches some mid-flight and some still queued.
  net::Link* link = network.add_link("l", 8'000'000, Duration::millis(50),
                                     std::make_unique<net::DropTailQueue>(32));
  const net::Route* route = network.add_route({link});
  CountingSink sink;

  fault::LinkFaultState st;
  st.policy = policy;
  link->attach_fault(&st);

  constexpr std::size_t kPackets = 10;
  sim.in(Duration::zero(), [&] {
    for (net::SeqNum s = 0; s < kPackets; ++s) {
      net::Packet p;
      p.flow = 1;
      p.seq = s;
      p.size_bytes = 1000;
      p.route = route;
      p.sink = &sink;
      net::inject(std::move(p));
    }
  });
  sim.in(Duration::millis(3), [&] { link->fault_set_down(true); });
  // Mid-outage quiescent point: parked/queued packets must all be held.
  sim.in(Duration::millis(30), [&] { network.debug_check_conservation(); });
  sim.in(Duration::millis(60), [&] { link->fault_set_down(false); });
  sim.run();

  EXPECT_EQ(network.pool().live(), 0u);
  network.debug_check_conservation();
  if (policy == fault::DownPolicy::kDrop) {
    EXPECT_GT(st.counters.flap_drops, 0u);
    EXPECT_EQ(sink.delivered + st.counters.flap_drops, kPackets);
  } else {
    EXPECT_GT(st.counters.parked, 0u);
    EXPECT_EQ(sink.delivered, kPackets);  // parked packets replay, none lost
  }
  link->attach_fault(nullptr);
}

TEST(NetworkInvariantTest, PoolConservedAcrossFlapDrop) {
  run_flap_conservation(fault::DownPolicy::kDrop);
}

TEST(NetworkInvariantTest, PoolConservedAcrossFlapPark) {
  run_flap_conservation(fault::DownPolicy::kPark);
}

TEST(EventQueueInvariantTest, DebugValidateCleanAcrossChurn) {
  sim::EventQueue q;
  std::vector<sim::EventHandle> handles;
  for (int i = 0; i < 200; ++i) {
    handles.push_back(q.schedule(TimePoint::zero() + Duration::millis(200 - i), [] {}));
  }
  for (int i = 0; i < 200; i += 3) handles[static_cast<std::size_t>(i)].cancel();
  q.debug_validate();
  while (!q.empty()) (void)q.pop_and_run();
  q.debug_validate();
  SUCCEED();
}

}  // namespace
}  // namespace lossburst

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace lossburst::net {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

/// Records every delivered packet with its arrival time.
class Collector final : public Endpoint {
 public:
  explicit Collector(sim::Simulator& sim) : sim_(sim) {}
  void receive(const Packet& pkt, const PacketOptions* /*opt*/) override {
    seqs.push_back(pkt.seq);
    times.push_back(sim_.now());
    last = pkt;
  }
  std::vector<SeqNum> seqs;
  std::vector<TimePoint> times;
  Packet last;

 private:
  sim::Simulator& sim_;
};

Packet make_packet(SeqNum seq, std::uint32_t bytes, const Route* route, Endpoint* sink) {
  Packet p;
  p.flow = 1;
  p.seq = seq;
  p.size_bytes = bytes;
  p.route = route;
  p.sink = sink;
  return p;
}

TEST(LinkTest, TxTimeMatchesRate) {
  sim::Simulator sim;
  PacketPool pool;
  Link link(sim, pool, "l", 8'000'000 /* 1 MB/s */, 0_ms,
            std::make_unique<DropTailQueue>(10));
  EXPECT_EQ(link.tx_time(1000).ns(), 1'000'000);  // 1000 B at 1 MB/s = 1 ms
  EXPECT_EQ(link.tx_time(1).ns(), 1'000);
}

TEST(LinkTest, TxTimeOddRateMatchesExactFormula) {
  // 7 bps does not divide 8e9 or 8e12 — exercises the 128-bit fallback.
  sim::Simulator sim;
  PacketPool pool;
  Link link(sim, pool, "l", 7, 0_ms, std::make_unique<DropTailQueue>(10));
  // 1000 B * 8e9 / 7 = 1142857142857.14... -> floor.
  EXPECT_EQ(link.tx_time(1000).ns(), 1'142'857'142'857);
}

TEST(LinkTest, TxTimeJumboSizeDoesNotOverflow) {
  sim::Simulator sim;
  PacketPool pool;
  // 1 Tbps uses the picosecond fast path (8 ps/byte).
  Link link(sim, pool, "l", 1'000'000'000'000ULL, 0_ms,
            std::make_unique<DropTailQueue>(10));
  // Max-size "packet": 4294967295 B * 8e12 / 1e12 ns.
  EXPECT_EQ(link.tx_time(0xffff'ffffu).ns(), 34'359'738);
  // A max-size packet on a 1 bps link exceeds int64 nanoseconds entirely;
  // the guard saturates instead of wrapping negative.
  PacketPool pool2;
  Link slow(sim, pool2, "s", 1, 0_ms, std::make_unique<DropTailQueue>(10));
  EXPECT_GT(slow.tx_time(0xffff'ffffu).ns(), 0);
  EXPECT_GE(slow.tx_time(0xffff'ffffu).ns(), slow.tx_time(0x7fff'ffffu).ns());
}

TEST(LinkTest, BdpPackets) {
  sim::Simulator sim;
  PacketPool pool;
  Link link(sim, pool, "l", 100'000'000, 50_ms, std::make_unique<DropTailQueue>(10));
  // 100 Mbps * 50 ms = 625000 bytes = 625 x 1000B packets.
  EXPECT_NEAR(link.bdp_packets(1000), 625.0, 1e-9);
}

TEST(LinkTest, DeliveryLatencyIsTxPlusPropagation) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 10_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // 1 ms serialization + 10 ms propagation.
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 11_ms);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 3; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 1_ms);
  EXPECT_EQ(sink.times[1], TimePoint::zero() + 2_ms);
  EXPECT_EQ(sink.times[2], TimePoint::zero() + 3_ms);
}

TEST(LinkTest, MultiHopRouteTraversesAllLinks) {
  sim::Simulator sim;
  Network net(sim);
  Link* a = net.add_link("a", 8'000'000, 5_ms, std::make_unique<DropTailQueue>(10));
  Link* b = net.add_link("b", 8'000'000, 7_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({a, b});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // 1ms tx + 5ms + 1ms tx + 7ms.
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 14_ms);
  EXPECT_EQ(a->packets_sent(), 1u);
  EXPECT_EQ(b->packets_sent(), 1u);
}

TEST(LinkTest, EmptyRouteDeliversDirectly) {
  sim::Simulator sim;
  Network net(sim);
  const Route* route = net.add_route({});
  Collector sink(sim);
  inject(make_packet(9, 100, route, &sink));
  EXPECT_EQ(sink.seqs, (std::vector<SeqNum>{9}));
}

TEST(LinkTest, OverflowDropsAtBottleneck) {
  sim::Simulator sim;
  Network net(sim);
  // Slow link with a 2-packet buffer; blast 10 packets at once.
  Link* link = net.add_link("slow", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(2));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 10; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  // One in flight + 2 queued survive.
  EXPECT_EQ(sink.seqs.size(), 3u);
  EXPECT_EQ(link->queue().counters().dropped, 7u);
}

TEST(LinkTest, FifoOrderPreservedPerFlow) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 80'000'000, 1_ms, std::make_unique<DropTailQueue>(100));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 50; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  ASSERT_EQ(sink.seqs.size(), 50u);
  for (SeqNum s = 0; s < 50; ++s) EXPECT_EQ(sink.seqs[s], s);
}

TEST(LinkTest, ProcessingJitterDelaysDelivery) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  link->set_processing_jitter([] { return Duration::millis(3); });
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 4_ms);  // 1 tx + 3 jitter
}

TEST(LinkTest, CountsBytesAndPackets) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    inject(make_packet(0, 1000, route, &sink));
    inject(make_packet(1, 500, route, &sink));
  });
  sim.run();
  EXPECT_EQ(link->packets_sent(), 2u);
  EXPECT_EQ(link->bytes_sent(), 1500u);
}

}  // namespace
}  // namespace lossburst::net

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace lossburst::net {
namespace {

using namespace lossburst::util::literals;
using util::Duration;
using util::TimePoint;

/// Records every delivered packet with its arrival time.
class Collector final : public Endpoint {
 public:
  explicit Collector(sim::Simulator& sim) : sim_(sim) {}
  void receive(Packet pkt) override {
    seqs.push_back(pkt.seq);
    times.push_back(sim_.now());
    last = pkt;
  }
  std::vector<SeqNum> seqs;
  std::vector<TimePoint> times;
  Packet last;

 private:
  sim::Simulator& sim_;
};

Packet make_packet(SeqNum seq, std::uint32_t bytes, const Route* route, Endpoint* sink) {
  Packet p;
  p.flow = 1;
  p.seq = seq;
  p.size_bytes = bytes;
  p.route = route;
  p.sink = sink;
  return p;
}

TEST(LinkTest, TxTimeMatchesRate) {
  sim::Simulator sim;
  Link link(sim, "l", 8'000'000 /* 1 MB/s */, 0_ms, std::make_unique<DropTailQueue>(10));
  EXPECT_EQ(link.tx_time(1000).ns(), 1'000'000);  // 1000 B at 1 MB/s = 1 ms
  EXPECT_EQ(link.tx_time(1).ns(), 1'000);
}

TEST(LinkTest, BdpPackets) {
  sim::Simulator sim;
  Link link(sim, "l", 100'000'000, 50_ms, std::make_unique<DropTailQueue>(10));
  // 100 Mbps * 50 ms = 625000 bytes = 625 x 1000B packets.
  EXPECT_NEAR(link.bdp_packets(1000), 625.0, 1e-9);
}

TEST(LinkTest, DeliveryLatencyIsTxPlusPropagation) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 10_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // 1 ms serialization + 10 ms propagation.
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 11_ms);
}

TEST(LinkTest, BackToBackPacketsSerializeSequentially) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 3; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  ASSERT_EQ(sink.times.size(), 3u);
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 1_ms);
  EXPECT_EQ(sink.times[1], TimePoint::zero() + 2_ms);
  EXPECT_EQ(sink.times[2], TimePoint::zero() + 3_ms);
}

TEST(LinkTest, MultiHopRouteTraversesAllLinks) {
  sim::Simulator sim;
  Network net(sim);
  Link* a = net.add_link("a", 8'000'000, 5_ms, std::make_unique<DropTailQueue>(10));
  Link* b = net.add_link("b", 8'000'000, 7_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({a, b});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  // 1ms tx + 5ms + 1ms tx + 7ms.
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 14_ms);
  EXPECT_EQ(a->packets_sent(), 1u);
  EXPECT_EQ(b->packets_sent(), 1u);
}

TEST(LinkTest, EmptyRouteDeliversDirectly) {
  sim::Simulator sim;
  Network net(sim);
  const Route* route = net.add_route({});
  Collector sink(sim);
  inject(make_packet(9, 100, route, &sink));
  EXPECT_EQ(sink.seqs, (std::vector<SeqNum>{9}));
}

TEST(LinkTest, OverflowDropsAtBottleneck) {
  sim::Simulator sim;
  Network net(sim);
  // Slow link with a 2-packet buffer; blast 10 packets at once.
  Link* link = net.add_link("slow", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(2));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 10; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  // One in flight + 2 queued survive.
  EXPECT_EQ(sink.seqs.size(), 3u);
  EXPECT_EQ(link->queue().counters().dropped, 7u);
}

TEST(LinkTest, FifoOrderPreservedPerFlow) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 80'000'000, 1_ms, std::make_unique<DropTailQueue>(100));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    for (SeqNum s = 0; s < 50; ++s) inject(make_packet(s, 1000, route, &sink));
  });
  sim.run();
  ASSERT_EQ(sink.seqs.size(), 50u);
  for (SeqNum s = 0; s < 50; ++s) EXPECT_EQ(sink.seqs[s], s);
}

TEST(LinkTest, ProcessingJitterDelaysDelivery) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  link->set_processing_jitter([] { return Duration::millis(3); });
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] { inject(make_packet(0, 1000, route, &sink)); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_EQ(sink.times[0], TimePoint::zero() + 4_ms);  // 1 tx + 3 jitter
}

TEST(LinkTest, CountsBytesAndPackets) {
  sim::Simulator sim;
  Network net(sim);
  Link* link = net.add_link("l", 8'000'000, 0_ms, std::make_unique<DropTailQueue>(10));
  const Route* route = net.add_route({link});
  Collector sink(sim);
  sim.in(Duration::zero(), [&] {
    inject(make_packet(0, 1000, route, &sink));
    inject(make_packet(1, 500, route, &sink));
  });
  sim.run();
  EXPECT_EQ(link->packets_sent(), 2u);
  EXPECT_EQ(link->bytes_sent(), 1500u);
}

}  // namespace
}  // namespace lossburst::net

#!/usr/bin/env python3
"""Compare a fresh micro_engine run against the committed Release baseline.

Usage: tools/bench_gate.py CURRENT.json [--baseline BENCH_engine.json]
       [--tolerance 0.10] [--require-all]

For every benchmark present in both files that reports an ``items_per_second``
rate (events/sec or packets/sec), the current rate must be within
``tolerance`` of the baseline rate on the slow side; speedups always pass.
Benchmarks present on only one side are reported with the side they are
missing from but do not fail the gate: a run filtered with
``--benchmark_filter`` legitimately carries a subset of the baseline, and new
benchmarks are expected to appear before their baseline is re-recorded. Pass
``--require-all`` (CI does, on full-suite runs) to turn a baseline benchmark
missing from the run back into a failure — that is how CI catches a
benchmark that silently stopped being built or registered.

The committed baseline is recorded by ``bench/run_engine_bench.sh`` with
``--benchmark_repetitions=3 --benchmark_report_aggregates_only=true``; this
script reads the ``_median`` aggregate when present and the raw entry
otherwise, so it accepts both aggregated baselines and single-repetition CI
smoke runs.

Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_rates(path: str) -> dict[str, float]:
    """Map benchmark name (sans aggregate suffix) -> items_per_second."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    rates: dict[str, float] = {}
    raw: dict[str, float] = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        ips = b.get("items_per_second")
        if ips is None:
            continue
        if b.get("aggregate_name") == "median":
            rates[name[: -len("_median")]] = ips
        elif "aggregate_name" not in b:
            raw[name] = ips
    # Prefer the median aggregate; fall back to the raw (single-rep) entry.
    for name, ips in raw.items():
        rates.setdefault(name, ips)
    return rates


def main() -> int:
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="benchmark JSON from the candidate build")
    ap.add_argument(
        "--baseline",
        default=os.path.join(repo_root, "BENCH_engine.json"),
        help="committed baseline JSON (default: BENCH_engine.json at repo root)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional slowdown vs baseline (default 0.10 = 10%%)",
    )
    ap.add_argument(
        "--require-all",
        action="store_true",
        help="fail when a baseline benchmark is missing from the run "
        "(full-suite CI mode; default tolerates filtered partial runs)",
    )
    args = ap.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        ctx = json.load(f).get("context", {})
    # Prefer the tree's own build type, stamped by bench/run_engine_bench.sh;
    # google-benchmark's library_build_type describes the benchmark *library*
    # and is "debug" on systems shipping a debug libbenchmark.
    build_type = ctx.get(
        "cmake_build_type", ctx.get("library_build_type", "unknown")
    ).lower()
    if build_type not in ("release", "relwithdebinfo"):
        print(
            f"error: baseline {args.baseline} was recorded from a "
            f"'{build_type}' build; re-record it with bench/run_engine_bench.sh "
            "from a Release tree",
            file=sys.stderr,
        )
        return 2

    base = load_rates(args.baseline)
    cur = load_rates(args.current)
    if not base:
        print("error: baseline reports no items_per_second rates", file=sys.stderr)
        return 2

    failures: list[str] = []
    compared = 0
    skipped: list[str] = []
    for name in sorted(base):
        if name not in cur:
            msg = f"{name}: in baseline, missing from run"
            if args.require_all:
                print(f"MISS {msg}")
                failures.append(msg)
            else:
                print(f"skip {msg} (partial run tolerated; --require-all to fail)")
                skipped.append(name)
            continue
        compared += 1
        ratio = cur[name] / base[name]
        status = "OK  " if ratio >= 1.0 - args.tolerance else "FAIL"
        print(
            f"{status} {name}: {cur[name]:.3e} vs baseline {base[name]:.3e} "
            f"items/s ({ratio:+.1%} of baseline)"
        )
        if status == "FAIL":
            failures.append(
                f"{name}: {ratio:.1%} of baseline rate "
                f"(floor {1.0 - args.tolerance:.0%})"
            )
    for name in sorted(set(cur) - set(base)):
        print(f"new  {name}: {cur[name]:.3e} items/s (in run, missing from baseline)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) below the gate:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    if compared == 0:
        print(
            "error: no benchmark present in both baseline and run — "
            "check the --benchmark_filter expression",
            file=sys.stderr,
        )
        return 2
    tail = f" ({len(skipped)} baseline benchmark(s) not in this run)" if skipped else ""
    print(
        f"\nOK: {compared} benchmark(s) within {args.tolerance:.0%} of baseline{tail}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""NDJSON client for the lossburst telemetry server (DESIGN.md sec. 13).

Talks to examples/lossburst_serve over TCP, one JSON object per line in
each direction. Standard library only.

Usage:
  obs_client.py [--host H] [--port P] watch [--level N] [--no-topflows]
  obs_client.py [--host H] [--port P] schema
  obs_client.py [--host H] [--port P] inject PLAN_FILE [--run]
  obs_client.py [--host H] [--port P] ctl CMD [KEY=VALUE ...]
  obs_client.py [--host H] [--port P] run | stop | stats

Examples:
  # stream 1s-resolution roll-ups, render top flows as they change
  obs_client.py --port 7787 watch --level 1
  # inject a fault plan into a --wait-run server, then release it
  obs_client.py --port 7787 inject plans/burst.plan --run
  # start dynamic flow slot 2
  obs_client.py --port 7787 ctl add-flow slot=2
"""
import argparse
import json
import socket
import sys


class Client:
    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), timeout=30)
        self.rd = self.sock.makefile("r", encoding="utf-8")
        hello = json.loads(self.rd.readline())
        assert hello.get("type") == "hello", hello

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode())

    def lines(self):
        for line in self.rd:
            if line.strip():
                yield json.loads(line)

    def expect(self, types):
        """Read until a message whose type is in `types` arrives; return it."""
        for msg in self.lines():
            if msg["type"] in types:
                return msg
            if msg["type"] == "error":
                sys.exit("server error: %s" % msg.get("msg", "?"))
        sys.exit("connection closed while waiting for %s" % "/".join(types))


def fec_health_line(fec_last):
    """One-line repair-health summary from the latest fec.* metric values.

    Keys are the metric name with the "fec.<flow>." prefix stripped, so one
    line covers the single streaming-FEC pair the serve scenario runs.
    """
    def v(key):
        return fec_last.get(key, 0)
    held = " HELD" if v("rcv.fit_held") else ""
    degraded = " DEGRADED" if v("src.degraded") else ""
    return ("fec: frontier=%d delivered=%d decoded=%d repairs=%d retx=%d "
            "rank=%d rate=%.3f fit p=%.4f q=%.3f%s%s"
            % (v("src.frontier"), v("rcv.delivered"), v("rcv.decoded"),
               v("src.repairs"), v("src.retx"), v("rcv.rank"),
               v("src.repair_rate"), v("rcv.fit_p"), v("rcv.fit_q"),
               held, degraded))


def cmd_watch(cli, args):
    cli.send({"cmd": "resolution", "level": args.level})
    if args.no_topflows:
        cli.send({"cmd": "topflows", "enabled": False})
    cli.send({"cmd": "subscribe"})
    shown = 0
    fec_last = {}
    try:
        for msg in cli.lines():
            t = msg["type"]
            if t == "metric":
                name = msg.get("name", "")
                if name.startswith("fec."):
                    # fec.<flow>.src.retx -> src.retx: folded into the health
                    # summary printed at each mark. A matching --grep still
                    # prints the raw line too.
                    fec_last[name.split(".", 2)[-1]] = msg["last"]
                    if not args.grep:
                        continue
                if args.grep and args.grep not in name:
                    continue
                print(
                    "%8.2fs L%d %-40s min=%-10g mean=%-10g max=%-10g last=%g"
                    % (msg["t"], msg["level"], msg.get("name", msg["id"]),
                       msg["min"], msg["mean"], msg["max"], msg["last"]))
                shown += 1
            elif t == "topflow":
                print("%8.2fs top#%d flow=%-6d %10.0f B %6.0f retx %6.0f loss %10.0f bps"
                      % (msg["t"], msg["rank"], msg["flow"], msg["bytes"],
                         msg["retx"], msg["losses"], msg["bps"]))
            elif t == "mark":
                if msg["interval"] % args.mark_every == 0:
                    print("-- interval %d (t=%.2fs, dropped=%d)"
                          % (msg["interval"], msg["t"], msg["client_dropped"]))
                    if fec_last:
                        print("   " + fec_health_line(fec_last))
            elif t in ("control", "trace_drops"):
                print("** %s: %s" % (t, json.dumps(msg)))
            if args.max_lines and shown >= args.max_lines:
                break
    except KeyboardInterrupt:
        pass  # Ctrl-C ends the watch, not the shell's patience
    except socket.timeout:  # TimeoutError on 3.10+, socket-specific before
        # The socket carries a 30s timeout; a server that stopped publishing
        # (simulation finished, or --wait-run never released) surfaces here.
        print("watch: server idle for 30s, closing", file=sys.stderr)
    except (ConnectionResetError, BrokenPipeError):
        print("watch: server closed the connection", file=sys.stderr)


def cmd_schema(cli, _args):
    cli.send({"cmd": "schema"})
    msg = cli.expect(["schema"])
    print("interval: %g ns, %d columns" % (msg["interval_ns"], len(msg["columns"])))
    fec_ids = set(msg.get("fec", []))
    for col in msg["columns"]:
        mark = " [fec]" if col["id"] in fec_ids else ""
        print("%5d  %-7s %s%s" % (col["id"], col["kind"], col["name"], mark))
    if fec_ids:
        print("fec repair-health stanza: %d columns" % len(fec_ids))


def cmd_inject(cli, args):
    with open(args.plan_file, encoding="utf-8") as f:
        plan = f.read()
    cli.send({"cmd": "inject-plan", "plan": plan})
    cli.expect(["ok"])
    if args.run:
        cli.send({"cmd": "run"})
    # The verdict comes back asynchronously once the sim thread applies it.
    msg = cli.expect(["control"])
    print(msg["msg"])
    if msg["msg"].startswith("error"):
        sys.exit(1)


def cmd_ctl(cli, args):
    msg = {"cmd": args.ctl_cmd}
    for kv in args.kv:
        key, _, value = kv.partition("=")
        msg[key] = int(value) if value.isdigit() else value
    cli.send(msg)
    cli.expect(["ok"])
    print(cli.expect(["control"])["msg"])


def cmd_simple(cli, cmd, reply_types):
    cli.send({"cmd": cmd})
    print(json.dumps(cli.expect(reply_types)))


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, required=True)
    sub = ap.add_subparsers(dest="verb", required=True)

    w = sub.add_parser("watch", help="subscribe and pretty-print the stream")
    w.add_argument("--level", type=int, default=1,
                   help="min roll-up level to stream (0=100ms raw .. 3=60s)")
    w.add_argument("--no-topflows", action="store_true")
    w.add_argument("--grep", default="", help="only metrics whose name contains this")
    w.add_argument("--mark-every", type=int, default=10)
    w.add_argument("--max-lines", type=int, default=0)

    sub.add_parser("schema", help="print the frozen column set")

    i = sub.add_parser("inject", help="inject a fault plan file")
    i.add_argument("plan_file")
    i.add_argument("--run", action="store_true",
                   help="also release a --wait-run server")

    c = sub.add_parser("ctl", help="send a raw control command")
    c.add_argument("ctl_cmd", help="e.g. add-flow, remove-flow, set-queue, clear-fault")
    c.add_argument("kv", nargs="*", help="fields, e.g. slot=2 or link=bottleneck.fwd")

    sub.add_parser("run", help="release a --wait-run server")
    sub.add_parser("stop", help="ask the simulation to end early")
    sub.add_parser("stats", help="print this connection's counters")

    args = ap.parse_args()
    cli = Client(args.host, args.port)
    if args.verb == "watch":
        cmd_watch(cli, args)
    elif args.verb == "schema":
        cmd_schema(cli, args)
    elif args.verb == "inject":
        cmd_inject(cli, args)
    elif args.verb == "ctl":
        cmd_ctl(cli, args)
    elif args.verb == "stats":
        cmd_simple(cli, "stats", ["stats"])
    else:  # run / stop
        cmd_simple(cli, args.verb, ["ok"])


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fixture self-tests for lossburst_lint.py (registered as ctest
``lint.fixtures``).

Each rule class gets a deliberately-bad fixture that must FAIL the lint and
a clean/annotated variant that must PASS — proving the lint both lands
clean on the real tree and actually catches regressions. Fixtures are
written to a throwaway root so the rule's path predicates (datapath files,
hash-iteration directories, src/-only rules) apply exactly as they do in
the repository.

Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lossburst_lint.py")

PASSED = 0
FAILED = []


def run_lint(root: str, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, LINT, "--root", root, *extra],
        capture_output=True,
        text=True,
    )


def check(name: str, ok: bool, detail: str = "") -> None:
    global PASSED
    if ok:
        PASSED += 1
        print(f"  ok: {name}")
    else:
        FAILED.append(name)
        print(f"FAIL: {name}\n{detail}")


def lint_fixture(tmp: str, rel_path: str, source: str) -> subprocess.CompletedProcess:
    path = os.path.join(tmp, rel_path)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(source)
    return run_lint(tmp, "--lint-file", path)


def expect_finding(name: str, tmp: str, rel_path: str, source: str, rule: str) -> None:
    r = lint_fixture(tmp, rel_path, source)
    check(
        name,
        r.returncode == 1 and f"[{rule}]" in r.stdout,
        f"  exit={r.returncode}\n  stdout: {r.stdout!r}\n  stderr: {r.stderr!r}",
    )


def expect_clean(name: str, tmp: str, rel_path: str, source: str) -> None:
    r = lint_fixture(tmp, rel_path, source)
    check(
        name,
        r.returncode == 0,
        f"  exit={r.returncode}\n  stdout: {r.stdout!r}\n  stderr: {r.stderr!r}",
    )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="real repository root; when set, "
                    "also asserts the actual tree lints clean")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="lossburst_lint_fixtures_") as tmp:
        # ------------------------------------------------ wall-clock
        expect_finding(
            "wall-clock: steady_clock trips",
            tmp, "src/util/fix_wall.cpp",
            "#include <chrono>\n"
            "long long host_now() {\n"
            "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
            "}\n",
            "wall-clock",
        )
        expect_finding(
            "wall-clock: rand() trips",
            tmp, "tests/fix_rand.cpp",
            "#include <cstdlib>\n"
            "int noise() { return rand(); }\n",
            "wall-clock",
        )
        expect_clean(
            "wall-clock: annotated with justification passes",
            tmp, "src/util/fix_wall_ok.cpp",
            "#include <chrono>\n"
            "long long host_now() {\n"
            "  // lossburst-lint: allow(wall-clock): progress report only; never "
            "feeds simulated time\n"
            "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
            "}\n",
        )
        expect_clean(
            "wall-clock: mention in a comment does not trip",
            tmp, "src/util/fix_wall_comment.cpp",
            "// steady_clock is banned here; see DESIGN.md §9.\n"
            "int x = 0;\n",
        )

        # ------------------------------------------------ hash-iteration
        hash_iter_src = (
            "#include <unordered_map>\n"
            "int sum_values() {\n"
            "  std::unordered_map<int, int> counts;\n"
            "  int s = 0;\n"
            "  for (const auto& kv : counts) s += kv.second;\n"
            "  return s;\n"
            "}\n"
        )
        expect_finding(
            "hash-iteration: range-for over unordered_map in src/analysis trips",
            tmp, "src/analysis/fix_hash.cpp", hash_iter_src, "hash-iteration",
        )
        expect_finding(
            "hash-iteration: explicit begin() in src/sim trips",
            tmp, "src/sim/fix_hash_begin.cpp",
            "#include <unordered_set>\n"
            "#include <vector>\n"
            "std::vector<int> dump() {\n"
            "  std::unordered_set<int> ids;\n"
            "  return std::vector<int>(ids.begin(), ids.end());\n"
            "}\n",
            "hash-iteration",
        )
        expect_clean(
            "hash-iteration: lookups without iteration pass",
            tmp, "src/net/fix_hash_lookup.cpp",
            "#include <unordered_map>\n"
            "int lookup(int k) {\n"
            "  std::unordered_map<int, int> m;\n"
            "  auto it = m.find(k);\n"
            "  return it == m.end() ? 0 : it->second;\n"
            "}\n",
        )
        expect_clean(
            "hash-iteration: same code outside guarded dirs passes",
            tmp, "src/util/fix_hash_util.cpp", hash_iter_src,
        )
        expect_finding(
            "hash-iteration: src/fault is a guarded dir",
            tmp, "src/fault/fix_hash_fault.cpp", hash_iter_src, "hash-iteration",
        )

        # ------------------------------------------------ datapath-alloc
        expect_finding(
            "datapath-alloc: bare new in src/net/queue.cpp trips",
            tmp, "src/net/queue.cpp",
            "int* grow() { return new int[64]; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: std::function in src/sim/event_queue.cpp trips",
            tmp, "src/sim/event_queue.cpp",
            "#include <functional>\n"
            "void hold(std::function<void()> f) { f(); }\n",
            "datapath-alloc",
        )
        expect_clean(
            "datapath-alloc: annotated growth-path allocation passes",
            tmp, "src/net/link.cpp",
            "#include <memory>\n"
            "std::unique_ptr<int[]> grow() {\n"
            "  // lossburst-lint: allow(datapath-alloc): growth path only; "
            "stops at the high-water mark\n"
            "  return std::make_unique<int[]>(64);\n"
            "}\n",
        )
        expect_clean(
            "datapath-alloc: same alloc outside datapath files passes",
            tmp, "src/obs/fix_alloc_ok.cpp",
            "int* grow() { return new int[64]; }\n",
        )
        expect_finding(
            "datapath-alloc: fault channel header is a datapath file",
            tmp, "src/fault/channel.hpp",
            "int* per_packet() { return new int; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: link header is a datapath file",
            tmp, "src/net/link.hpp",
            "#include <functional>\n"
            "void hold(std::function<void()> f) { f(); }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: ladder queue header is a datapath file",
            tmp, "src/sim/ladder_queue.hpp",
            "int* per_entry() { return new int; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: ladder queue impl is a datapath file",
            tmp, "src/sim/ladder_queue.cpp",
            "#include <memory>\n"
            "std::shared_ptr<int> rung() { return std::make_shared<int>(1); }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: shard mailbox header is a datapath file",
            tmp, "src/sim/shard_mailbox.hpp",
            "int* per_handoff() { return new int; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: shard coordinator impl is a datapath file",
            tmp, "src/sim/shard_coordinator.cpp",
            "#include <functional>\n"
            "void park(std::function<void()> f) { f(); }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: live snapshot ring header is a datapath file",
            tmp, "src/obs/live/spsc_ring.hpp",
            "int* per_publish() { return new int; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: live publisher impl is a datapath file",
            tmp, "src/obs/live/publisher.cpp",
            "#include <functional>\n"
            "void defer(std::function<void()> f) { f(); }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: fec codec impl is a datapath file",
            tmp, "src/fec/codec.cpp",
            "int* per_row() { return new int; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: fec gf256 header is a datapath file",
            tmp, "src/fec/gf256.hpp",
            "int* per_symbol() { return new int[4]; }\n",
            "datapath-alloc",
        )
        expect_finding(
            "datapath-alloc: fec endpoint impl is a datapath file",
            tmp, "src/fec/endpoint.cpp",
            "#include <functional>\n"
            "void feedback(std::function<void()> f) { f(); }\n",
            "datapath-alloc",
        )

        # ------------------------------------------------ untagged-event
        expect_finding(
            "untagged-event: schedule without EventTag trips",
            tmp, "src/net/fix_untagged.cpp",
            "struct S { template <class F> void at(long t, F f); };\n"
            "void arm(S& sim_) {\n"
            "  sim_.at(42, [] {});\n"
            "}\n",
            "untagged-event",
        )
        expect_clean(
            "untagged-event: tagged multi-line schedule passes",
            tmp, "src/net/fix_tagged.cpp",
            "struct S { template <class F, class T> void at(long t, F f, T tag); };\n"
            "void arm(S& sim_) {\n"
            "  sim_.at(42, [] {},\n"
            "          obs::EventTag::kGeneric);\n"
            "}\n",
        )
        expect_clean(
            "untagged-event: bench code is exempt",
            tmp, "bench/fix_untagged_bench.cpp",
            "struct S { template <class F> void at(long t, F f); };\n"
            "void arm(S& sim_) { sim_.at(42, [] {}); }\n",
        )

        # ------------------------------------------------ raw-stream
        expect_finding(
            "raw-stream: std::cerr in library code trips",
            tmp, "src/tcp/fix_stream.cpp",
            "#include <iostream>\n"
            "void moan() { std::cerr << \"bad\\n\"; }\n",
            "raw-stream",
        )
        expect_finding(
            "raw-stream: fprintf in library code trips",
            tmp, "src/util/fix_fprintf.cpp",
            "#include <cstdio>\n"
            "void moan() { std::fprintf(stderr, \"bad\\n\"); }\n",
            "raw-stream",
        )
        expect_clean(
            "raw-stream: tests may print",
            tmp, "tests/fix_stream_test.cpp",
            "#include <iostream>\n"
            "void report() { std::cout << \"ok\\n\"; }\n",
        )

        # ------------------------------------------------ raw-sync
        expect_finding(
            "raw-sync: std::atomic in a shim-converted file trips",
            tmp, "src/obs/live/freeze_latch.hpp",
            "#include <atomic>\n"
            "struct L { std::atomic<bool> frozen{false}; };\n",
            "raw-sync",
        )
        expect_finding(
            "raw-sync: std::mutex in a shim-converted file trips",
            tmp, "src/serve/control.hpp",
            "#include <mutex>\n"
            "struct Q { std::mutex mu; };\n",
            "raw-sync",
        )
        expect_finding(
            "raw-sync: std::atomic_thread_fence in a shim-converted file trips",
            tmp, "src/sim/epoch_handshake.hpp",
            "#include <atomic>\n"
            "void pub() { std::atomic_thread_fence(std::memory_order_release); }\n",
            "raw-sync",
        )
        expect_clean(
            "raw-sync: Sync policy aliases and memory_order vocabulary pass",
            tmp, "src/sim/shard_mailbox.hpp",
            "#include <atomic>\n"
            "#include <mutex>\n"
            "template <class Sync> struct M {\n"
            "  typename Sync::template atomic<int> n{0};\n"
            "  typename Sync::mutex mu;\n"
            "  int peek() {\n"
            "    const std::lock_guard<typename Sync::mutex> lk(mu);\n"
            "    return n.load(std::memory_order_acquire);\n"
            "  }\n"
            "};\n",
        )
        expect_clean(
            "raw-sync: same primitives outside shim files pass",
            tmp, "src/sim/shard_coordinator.hpp",
            "#include <atomic>\n"
            "#include <thread>\n"
            "struct C { std::atomic<bool> abort{false}; std::thread t; };\n",
        )
        expect_clean(
            "raw-sync: annotated escape hatch passes",
            tmp, "src/obs/live/decimator.hpp",
            "#include <thread>\n"
            "// lossburst-lint: allow(raw-sync): hardware_concurrency is a "
            "query, not a primitive\n"
            "unsigned cores() { return std::thread::hardware_concurrency(); }\n",
        )

        # ------------------------------------------------ seq-cst
        expect_finding(
            "seq-cst: defaulted load() in a datapath file trips",
            tmp, "src/util/ring_buffer.hpp",
            "#include <atomic>\n"
            "struct R { std::atomic<long> head{0}; };\n"
            "long peek(const R& r) { return r.head.load(); }\n",
            "seq-cst",
        )
        expect_finding(
            "seq-cst: single-argument store() in a datapath file trips",
            tmp, "src/sim/event_queue.hpp",
            "#include <atomic>\n"
            "struct Q { std::atomic<long> n{0}; };\n"
            "void reset(Q& q) { q.n.store(0); }\n",
            "seq-cst",
        )
        expect_clean(
            "seq-cst: explicit order passes",
            tmp, "src/net/queue.hpp",
            "#include <atomic>\n"
            "struct Q { std::atomic<long> n{0}; };\n"
            "long depth(const Q& q) { return q.n.load(std::memory_order_relaxed); }\n"
            "void reset(Q& q) { q.n.store(0, std::memory_order_release); }\n",
        )
        expect_clean(
            "seq-cst: named constexpr order counts as explicit",
            tmp, "src/net/link.hpp",
            "#include <atomic>\n"
            "constexpr auto kOrder = std::memory_order_release;\n"
            "struct L { std::atomic<long> busy{0}; };\n"
            "void publish(L& l, long v) { l.busy.store(v + f(1, 2), kOrder); }\n",
        )
        expect_clean(
            "seq-cst: defaulted order outside datapath files passes",
            tmp, "src/obs/fix_seqcst_ok.cpp",
            "#include <atomic>\n"
            "struct G { std::atomic<long> n{0}; };\n"
            "long peek(const G& g) { return g.n.load(); }\n",
        )
        expect_clean(
            "seq-cst: annotated deliberate seq_cst passes",
            tmp, "src/net/channel.hpp",
            "#include <atomic>\n"
            "struct C { std::atomic<long> gate{0}; };\n"
            "long fence_read(const C& c) {\n"
            "  // lossburst-lint: allow(seq-cst): total order against the "
            "writer's flag anchors the Dekker handshake\n"
            "  return c.gate.load();\n"
            "}\n",
        )

        # ------------------------------------------------ annotation hygiene
        expect_finding(
            "annotation: missing justification is itself a finding",
            tmp, "src/util/fix_no_why.cpp",
            "#include <chrono>\n"
            "// lossburst-lint: allow(wall-clock)\n"
            "auto t0 = std::chrono::steady_clock::now();\n",
            "wall-clock",
        )
        r = lint_fixture(
            tmp, "src/util/fix_typo.cpp",
            "// lossburst-lint: allow(wallclock): typo in the rule name\n"
            "int x = 0;\n",
        )
        check(
            "annotation: unknown rule name is an error",
            r.returncode == 1 and "[bad-annotation]" in r.stdout,
            f"  exit={r.returncode}\n  stdout: {r.stdout!r}",
        )

        # ------------------------------------------------ baseline handling
        bad = os.path.join(tmp, "src", "util", "fix_baselined.cpp")
        os.makedirs(os.path.dirname(bad), exist_ok=True)
        with open(bad, "w", encoding="utf-8") as f:
            f.write("#include <cstdlib>\nint noise() { return rand(); }\n")
        baseline = os.path.join(tmp, "baseline.txt")
        with open(baseline, "w", encoding="utf-8") as f:
            f.write("# grandfathered\nsrc/util/fix_baselined.cpp:2:wall-clock\n")
        r = run_lint(tmp, "--baseline", baseline, "--lint-file", bad)
        check(
            "baseline: grandfathered finding passes",
            r.returncode == 0,
            f"  exit={r.returncode}\n  stdout: {r.stdout!r}",
        )

        tree = tempfile.mkdtemp(prefix="lossburst_lint_tree_", dir=tmp)
        os.makedirs(os.path.join(tree, "src"))
        with open(os.path.join(tree, "src", "clean.cpp"), "w", encoding="utf-8") as f:
            f.write("int x = 0;\n")
        stale = os.path.join(tree, "baseline.txt")
        with open(stale, "w", encoding="utf-8") as f:
            f.write("src/gone.cpp:1:wall-clock\n")
        r = run_lint(tree, "--baseline", stale)
        check(
            "baseline: stale entry fails a full-tree scan",
            r.returncode == 1 and "stale baseline" in r.stdout,
            f"  exit={r.returncode}\n  stdout: {r.stdout!r}",
        )

    # ------------------------------------------------ the real tree is clean
    if args.root:
        r = run_lint(args.root)
        check(
            "real tree lints clean",
            r.returncode == 0,
            f"  exit={r.returncode}\n  stdout: {r.stdout!r}\n  stderr: {r.stderr!r}",
        )

    print(f"\n{PASSED} passed, {len(FAILED)} failed")
    if FAILED:
        for name in FAILED:
            print(f"  failed: {name}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

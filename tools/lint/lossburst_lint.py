#!/usr/bin/env python3
"""lossburst determinism & discipline lint.

Walks ``src/``, ``bench/``, and ``tests/`` and enforces the project rules
that keep identically seeded runs bit-reproducible and the zero-allocation
datapath honest (DESIGN.md §9):

  wall-clock       No rand()/srand()/std::random_device/system_clock/
                   steady_clock/high_resolution_clock anywhere the simulation
                   can see them. Wall time must never influence simulated
                   time or results. Legitimate wall-clock uses (progress
                   reporting, the loop profiler, bench timing) carry an
                   explicit annotation with a justification.
  hash-iteration   No iteration over std::unordered_map/unordered_set in
                   src/sim, src/net, src/tcp, src/analysis: hash-order
                   iteration feeds results, and libstdc++ gives no ordering
                   guarantee across reserve sizes or versions.
  datapath-alloc   No heap allocation (new / malloc / make_unique /
                   make_shared) and no std::function construction in the
                   zero-alloc datapath files guarded by the bench-smoke
                   gate. Growth paths that allocate only until the pool
                   high-water mark are annotated.
  untagged-event   Every EventQueue::schedule / Simulator::at / Simulator::in
                   call site in src/ passes an obs::EventTag so the loop
                   profiler can attribute every dispatched event.
  raw-stream       Library code (src/) logs through LOSSBURST_LOG* /
                   util::Logger, never raw std::cerr / std::cout / printf.
                   Exporters that write *files* are unaffected.
  raw-sync         No raw std::atomic / std::thread / std::barrier /
                   std::mutex / std::atomic_thread_fence in shim-converted
                   files (SHIM_FILES): those components are templated over
                   the check:: sync policy (check/sync.hpp, DESIGN.md §14)
                   so the model checker can instantiate them; a raw std::
                   primitive silently escapes every model-check suite.
                   std::memory_order and std::lock_guard are fine — they are
                   vocabulary, not primitives.
  seq-cst          load()/store() with a defaulted (seq_cst) memory order in
                   datapath files needs an explicit order or an
                   allow(seq-cst) justification: accidental seq_cst is a
                   fence on every access on ARM, and the deliberate cases
                   are rare enough to document.

Allowlist annotation (same line or the line directly above the finding):

    // lossburst-lint: allow(<rule>): <justification>

The justification is mandatory; an empty one is itself an error. A committed
baseline (tools/lint/lint_baseline.txt) grandfathers findings that predate
the lint; regressions against the baseline fail. The baseline ships empty —
every current finding is either fixed or annotated.

Usage:
  tools/lint/lossburst_lint.py [--root DIR] [--baseline FILE] [--list]
  tools/lint/lossburst_lint.py --lint-file FILE...   # fixture/self tests

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Stdlib only — no pip dependencies.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, NamedTuple, Optional, Sequence

ANNOTATION_RE = re.compile(
    r"//\s*lossburst-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)\s*(?::\s*(.*\S))?"
)

LINT_DIRS = ("src", "bench", "tests")

# Directories whose iteration order feeds simulation results.
HASH_ITER_DIRS = ("src/sim", "src/net", "src/tcp", "src/analysis", "src/fault")

# The zero-allocation datapath guarded by the bench-smoke gate
# (BM_ScheduleRun / BM_LinkForward / BM_ObsSteadyStateAllocs): steady-state
# operation must not touch the heap, and growth-path allocations must be
# explicitly annotated.
DATAPATH_FILES = (
    "src/sim/event_queue.hpp",
    "src/sim/event_queue.cpp",
    "src/sim/ladder_queue.hpp",
    "src/sim/ladder_queue.cpp",
    "src/net/packet_pool.hpp",
    "src/net/queue.hpp",
    "src/net/queue.cpp",
    "src/net/link.hpp",
    "src/net/link.cpp",
    "src/util/ring_buffer.hpp",
    # The fault layer's steady state (BM_FaultLinkForward) is gated too:
    # all fault state is allocated at injector construction, never per packet.
    "src/fault/channel.hpp",
    # The sharded engine's per-epoch machinery (BM_ShardedCampaign): mailbox
    # pushes, staged-arrival slots, and coordinator barriers are all on the
    # cross-shard datapath and must reach a fixed-capacity steady state.
    "src/sim/shard_mailbox.hpp",
    "src/sim/shard_coordinator.hpp",
    "src/sim/shard_coordinator.cpp",
    # The live telemetry publish path (BM_LivePublish): everything is
    # allocated at freeze(); per-interval publish() and client-side poll()
    # must stay allocation-free on the sim thread.
    "src/obs/live/spsc_ring.hpp",
    "src/obs/live/publisher.cpp",
    # The streaming-FEC codec and endpoints (BM_FecEncodeWindow /
    # BM_FecDecodeBurst): GF(256) kernels, the pooled coded-packet
    # side-table, and the per-packet encode/decode paths are all sized at
    # construction — steady-state coding must never touch the heap.
    "src/fec/gf256.hpp",
    "src/fec/codec.hpp",
    "src/fec/codec.cpp",
    "src/fec/endpoint.cpp",
)

# Files templated over the check:: sync policy (check/sync.hpp): raw std::
# synchronization primitives here would bypass the model checker. The shim
# layer itself (src/check/) is exempt — it *defines* the aliases.
SHIM_FILES = (
    "src/obs/live/spsc_ring.hpp",
    "src/obs/live/freeze_latch.hpp",
    "src/obs/live/publisher.hpp",
    "src/obs/live/decimator.hpp",
    "src/sim/shard_mailbox.hpp",
    "src/sim/epoch_handshake.hpp",
    "src/serve/control.hpp",
)

RULES = (
    "wall-clock",
    "hash-iteration",
    "datapath-alloc",
    "untagged-event",
    "raw-stream",
    "raw-sync",
    "seq-cst",
)

WALL_CLOCK_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:"
    r"rand\s*\(|srand\s*\(|random_device\b"
    r"|(?:chrono\s*::\s*)?(?:steady_clock|system_clock|high_resolution_clock)\b"
    r")"
)

ALLOC_RE = re.compile(
    r"(?<![\w.])(?:"
    r"new\b(?!\s*\()"          # placement new `new (addr)` does not allocate
    r"|malloc\s*\(|calloc\s*\(|realloc\s*\("
    r"|(?:std\s*::\s*)?make_unique\s*<"
    r"|(?:std\s*::\s*)?make_shared\s*<"
    r"|std\s*::\s*function\b"
    r")"
)

RAW_STREAM_RE = re.compile(
    r"std\s*::\s*(?:cerr|cout)\b|(?<![\w.])(?:std\s*::\s*)?(?:printf|fprintf|puts)\s*\("
)

UNORDERED_DECL_RE = re.compile(
    r"(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<[^;{]*?>\s*&?\s*"
    r"(\w+)\s*[;({=,)]"
)

SCHEDULE_CALL_RE = re.compile(
    r"(?<![\w.])(?:(\w+)(?:\.|->)(?:schedule|at|in)|sim_?\.(?:at|in))\s*\($"
)

# std::memory_order / std::lock_guard / std::unique_lock are deliberately NOT
# matched: they are vocabulary types that the shim-converted code still
# spells out (the policy only swaps the primitives).
RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(?:"
    r"atomic\b|atomic_thread_fence\b|atomic_signal_fence\b|atomic_flag\b"
    r"|thread\b|jthread\b|barrier\b|latch\b"
    r"|mutex\b|shared_mutex\b|recursive_mutex\b|timed_mutex\b"
    r"|condition_variable\b|condition_variable_any\b"
    r")"
)

# A load() with no arguments, or a store() with a single argument, defaults
# to seq_cst. The order itself may be a named constexpr (kPublishOrder), so
# presence of an argument in the order position — a top-level comma for
# store, any argument for load — is what counts, not the literal token
# "memory_order". Single-line matching is deliberate: the datapath files
# keep atomic accesses on one line.
SEQ_CST_RE = re.compile(r"\.\s*(load|store)\s*\(((?:[^()]|\([^()]*\))*)\)")


def _seq_cst_defaulted(method: str, args: str) -> bool:
    if method == "load":
        return not args.strip()
    depth = 0
    for ch in args:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            return False
    return True


class Finding(NamedTuple):
    path: str       # repo-relative, forward slashes
    line: int       # 1-based
    rule: str
    message: str

    def key(self) -> str:
        """Baseline key: stable across unrelated line-number churn is not
        attempted — the baseline ships empty, so precision wins."""
        return f"{self.path}:{self.line}:{self.rule}"

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments so rule regexes do not
    fire on prose. Block comments are handled by the caller (line-level
    in/out state); this keeps the scanner single-pass and dependency-free."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class FileScanner:
    """Scans one file, producing findings. One instance per file."""

    def __init__(self, rel_path: str, text: str):
        self.path = rel_path
        self.raw_lines = text.splitlines()
        self.code_lines = self._strip(self.raw_lines)
        self.allows = self._collect_allows(self.raw_lines)
        self.findings: List[Finding] = []

    @staticmethod
    def _strip(lines: Sequence[str]) -> List[str]:
        stripped = []
        in_block = False
        for line in lines:
            buf = []
            i, n = 0, len(line)
            while i < n:
                if in_block:
                    end = line.find("*/", i)
                    if end == -1:
                        i = n
                    else:
                        in_block = False
                        i = end + 2
                    continue
                if line.startswith("/*", i):
                    in_block = True
                    i += 2
                    continue
                if line.startswith("//", i):
                    break
                buf.append(line[i])
                i += 1
            stripped.append(strip_comments_and_strings("".join(buf)))
        return stripped

    @staticmethod
    def _collect_allows(lines: Sequence[str]) -> dict:
        """Map line number (1-based) -> set of allowed rules effective there.
        An annotation covers its own line and the line below it."""
        allows: dict = {}
        for idx, line in enumerate(lines, start=1):
            m = ANNOTATION_RE.search(line)
            if m is None:
                continue
            rules = {r.strip() for r in m.group(1).split(",")}
            justification = (m.group(2) or "").strip()
            entry = (rules, justification, idx)
            allows.setdefault(idx, []).append(entry)
            allows.setdefault(idx + 1, []).append(entry)
        return allows

    def allowed(self, line_no: int, rule: str) -> Optional[str]:
        """Returns the justification if `rule` is allowlisted at `line_no`
        (empty string when the annotation lacks one), else None."""
        for rules, justification, _ in self.allows.get(line_no, []):
            if rule in rules:
                return justification
        return None

    def report(self, line_no: int, rule: str, message: str) -> None:
        justification = self.allowed(line_no, rule)
        if justification is None:
            self.findings.append(Finding(self.path, line_no, rule, message))
        elif not justification:
            self.findings.append(
                Finding(
                    self.path,
                    line_no,
                    rule,
                    "allow(%s) annotation requires a justification "
                    "('// lossburst-lint: allow(%s): <why>')" % (rule, rule),
                )
            )

    # ----------------------------------------------------------- rules

    def check_annotations(self) -> None:
        """Unknown rule names in annotations are errors (typos silently
        disable nothing)."""
        seen = set()
        for entries in self.allows.values():
            for rules, _, anno_line in entries:
                if anno_line in seen:
                    continue
                seen.add(anno_line)
                for rule in rules:
                    if rule not in RULES:
                        self.findings.append(
                            Finding(
                                self.path,
                                anno_line,
                                "bad-annotation",
                                f"unknown lint rule '{rule}' in allow() "
                                f"(known: {', '.join(RULES)})",
                            )
                        )

    def check_wall_clock(self) -> None:
        for idx, code in enumerate(self.code_lines, start=1):
            if WALL_CLOCK_RE.search(code):
                self.report(
                    idx,
                    "wall-clock",
                    "wall-clock/global-entropy source; simulated results "
                    "must derive only from util::Rng and simulated time "
                    "(annotate intentional wall-clock uses)",
                )

    def check_hash_iteration(self) -> None:
        if not self.path.startswith(HASH_ITER_DIRS):
            return
        unordered_vars = set()
        for code in self.code_lines:
            for m in UNORDERED_DECL_RE.finditer(code):
                unordered_vars.add(m.group(1))
        if not unordered_vars:
            return
        var_alt = "|".join(re.escape(v) for v in sorted(unordered_vars))
        range_for = re.compile(r"for\s*\([^;)]*:\s*(?:\w+\.)?(%s)\s*\)" % var_alt)
        # Only begin()/cbegin(): every traversal needs one, while `it ==
        # m.end()` after a find() is an order-free lookup, not iteration.
        iterators = re.compile(r"\b(%s)\s*\.\s*(?:begin|cbegin|rbegin|crbegin)\s*\(" % var_alt)
        for idx, code in enumerate(self.code_lines, start=1):
            m = range_for.search(code) or iterators.search(code)
            if m:
                self.report(
                    idx,
                    "hash-iteration",
                    f"iteration over unordered container '{m.group(1)}': "
                    "hash order is unspecified and feeds results; use a "
                    "sorted copy, std::map, or a vector keyed by id",
                )

    def check_datapath_alloc(self) -> None:
        if self.path not in DATAPATH_FILES:
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if code.lstrip().startswith("#"):  # #include <new> et al.
                continue
            if ALLOC_RE.search(code):
                self.report(
                    idx,
                    "datapath-alloc",
                    "heap allocation or std::function in a zero-alloc "
                    "datapath file; steady-state operation must stay "
                    "allocation-free (annotate growth-path allocations)",
                )

    def check_untagged_event(self) -> None:
        if not self.path.startswith("src/"):
            return
        # Ignore the definitions themselves.
        if self.path in ("src/sim/event_queue.hpp", "src/sim/simulator.hpp"):
            return
        call_re = re.compile(
            r"(?<![\w.])(?:\w+(?:\.|->))?(?:sim_?|queue_?|q)(?:\.|->)(?:at|in|schedule)\s*\("
        )
        n = len(self.code_lines)
        for idx in range(n):
            code = self.code_lines[idx]
            m = call_re.search(code)
            if m is None:
                continue
            # Collect the full argument list across lines (paren balance).
            start = m.end() - 1  # position of '('
            depth = 0
            stmt_parts: List[str] = []
            row, col = idx, start
            done = False
            while row < n and not done:
                segment = self.code_lines[row]
                j = col if row == idx else 0
                while j < len(segment):
                    ch = segment[j]
                    if ch == "(":
                        depth += 1
                    elif ch == ")":
                        depth -= 1
                        if depth == 0:
                            done = True
                            break
                    j += 1
                stmt_parts.append(segment[col if row == idx else 0 : j + 1])
                row += 1
            stmt = " ".join(stmt_parts)
            if "EventTag" not in stmt and "tag" not in stmt:
                self.report(
                    idx + 1,
                    "untagged-event",
                    "event scheduled without an obs::EventTag; tag the "
                    "callback so the loop profiler can attribute it "
                    "(use obs::EventTag::kGeneric deliberately if needed)",
                )

    def check_raw_sync(self) -> None:
        if self.path not in SHIM_FILES:
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if RAW_SYNC_RE.search(code):
                self.report(
                    idx,
                    "raw-sync",
                    "raw std:: synchronization primitive in a shim-converted "
                    "file; use the check:: aliases or the Sync policy "
                    "(check/sync.hpp) so the model-check suites cover this "
                    "code path",
                )

    def check_seq_cst(self) -> None:
        if self.path not in DATAPATH_FILES:
            return
        for idx, code in enumerate(self.code_lines, start=1):
            for m in SEQ_CST_RE.finditer(code):
                if _seq_cst_defaulted(m.group(1), m.group(2)):
                    self.report(
                        idx,
                        "seq-cst",
                        "atomic load()/store() with a defaulted (seq_cst) "
                        "memory order on the datapath; spell the order "
                        "explicitly, or annotate why sequential consistency "
                        "is required here",
                    )

    def check_raw_stream(self) -> None:
        if not self.path.startswith("src/"):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if RAW_STREAM_RE.search(code):
                self.report(
                    idx,
                    "raw-stream",
                    "raw console I/O in library code; route diagnostics "
                    "through LOSSBURST_LOG*/util::Logger so verbosity and "
                    "destination stay controllable",
                )

    def run(self) -> List[Finding]:
        self.check_annotations()
        self.check_wall_clock()
        self.check_hash_iteration()
        self.check_datapath_alloc()
        self.check_untagged_event()
        self.check_raw_sync()
        self.check_seq_cst()
        self.check_raw_stream()
        return self.findings


def iter_source_files(root: str) -> Iterable[str]:
    exts = (".cpp", ".cc", ".hpp", ".h", ".ipp")
    for top in LINT_DIRS:
        base = os.path.join(root, top)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def load_baseline(path: str) -> set:
    keys = set()
    if not os.path.exists(path):
        return keys
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def scan_paths(root: str, paths: Iterable[str]) -> List[Finding]:
    findings: List[Finding] = []
    for path in paths:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"lossburst-lint: cannot read {rel}: {e}", file=sys.stderr)
            sys.exit(2)
        findings.extend(FileScanner(rel, text).run())
    return findings


def main(argv: Sequence[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None, help="repository root (default: auto)")
    ap.add_argument("--baseline", default=None, help="suppression baseline file")
    ap.add_argument("--list", action="store_true", help="list files that would be scanned")
    ap.add_argument(
        "--lint-file",
        nargs="+",
        default=None,
        metavar="FILE",
        help="lint specific files (paths taken relative to --root; used by "
        "the fixture self-tests)",
    )
    args = ap.parse_args(argv)

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
    )
    baseline_path = args.baseline or os.path.join(root, "tools", "lint", "lint_baseline.txt")

    if args.list:
        for path in iter_source_files(root):
            print(os.path.relpath(path, root))
        return 0

    if args.lint_file:
        findings = scan_paths(root, args.lint_file)
    else:
        findings = scan_paths(root, iter_source_files(root))

    baseline = load_baseline(baseline_path)
    new = [f for f in findings if f.key() not in baseline]
    stale = baseline - {f.key() for f in findings}

    for f in new:
        print(f.render())
    if stale and not args.lint_file:
        for key in sorted(stale):
            print(f"lossburst-lint: stale baseline entry (fixed? remove it): {key}")
    if new:
        print(f"lossburst-lint: {len(new)} finding(s)", file=sys.stderr)
        return 1
    if stale and not args.lint_file:
        print(f"lossburst-lint: {len(stale)} stale baseline entr(ies)", file=sys.stderr)
        return 1
    print(f"lossburst-lint: clean ({len(findings)} baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

# Empty compiler generated dependencies file for fig2_ns2_pdf.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig2_ns2_pdf.dir/fig2_ns2_pdf.cpp.o"
  "CMakeFiles/fig2_ns2_pdf.dir/fig2_ns2_pdf.cpp.o.d"
  "fig2_ns2_pdf"
  "fig2_ns2_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_ns2_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_pacing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_ecn.dir/ablation_ecn.cpp.o"
  "CMakeFiles/ablation_ecn.dir/ablation_ecn.cpp.o.d"
  "ablation_ecn"
  "ablation_ecn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ecn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

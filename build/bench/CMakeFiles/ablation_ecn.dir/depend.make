# Empty dependencies file for ablation_ecn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/shuffle_mapreduce.dir/shuffle_mapreduce.cpp.o"
  "CMakeFiles/shuffle_mapreduce.dir/shuffle_mapreduce.cpp.o.d"
  "shuffle_mapreduce"
  "shuffle_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuffle_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for shuffle_mapreduce.
# This may be replaced when dependencies are built.

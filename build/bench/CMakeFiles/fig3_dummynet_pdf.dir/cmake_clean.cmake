file(REMOVE_RECURSE
  "CMakeFiles/fig3_dummynet_pdf.dir/fig3_dummynet_pdf.cpp.o"
  "CMakeFiles/fig3_dummynet_pdf.dir/fig3_dummynet_pdf.cpp.o.d"
  "fig3_dummynet_pdf"
  "fig3_dummynet_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dummynet_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig3_dummynet_pdf.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig4_planetlab_pdf.
# This may be replaced when dependencies are built.

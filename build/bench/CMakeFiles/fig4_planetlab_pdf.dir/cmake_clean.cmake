file(REMOVE_RECURSE
  "CMakeFiles/fig4_planetlab_pdf.dir/fig4_planetlab_pdf.cpp.o"
  "CMakeFiles/fig4_planetlab_pdf.dir/fig4_planetlab_pdf.cpp.o.d"
  "fig4_planetlab_pdf"
  "fig4_planetlab_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_planetlab_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

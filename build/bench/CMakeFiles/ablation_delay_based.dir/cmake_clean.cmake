file(REMOVE_RECURSE
  "CMakeFiles/ablation_delay_based.dir/ablation_delay_based.cpp.o"
  "CMakeFiles/ablation_delay_based.dir/ablation_delay_based.cpp.o.d"
  "ablation_delay_based"
  "ablation_delay_based.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delay_based.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_delay_based.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_red.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_red.dir/ablation_red.cpp.o"
  "CMakeFiles/ablation_red.dir/ablation_red.cpp.o.d"
  "ablation_red"
  "ablation_red.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_red.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig7_competition.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig7_competition.dir/fig7_competition.cpp.o"
  "CMakeFiles/fig7_competition.dir/fig7_competition.cpp.o.d"
  "fig7_competition"
  "fig7_competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for red_tuning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/red_tuning.dir/red_tuning.cpp.o"
  "CMakeFiles/red_tuning.dir/red_tuning.cpp.o.d"
  "red_tuning"
  "red_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/red_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

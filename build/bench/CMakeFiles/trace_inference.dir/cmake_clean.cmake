file(REMOVE_RECURSE
  "CMakeFiles/trace_inference.dir/trace_inference.cpp.o"
  "CMakeFiles/trace_inference.dir/trace_inference.cpp.o.d"
  "trace_inference"
  "trace_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig8_parallel_latency.dir/fig8_parallel_latency.cpp.o"
  "CMakeFiles/fig8_parallel_latency.dir/fig8_parallel_latency.cpp.o.d"
  "fig8_parallel_latency"
  "fig8_parallel_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_parallel_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

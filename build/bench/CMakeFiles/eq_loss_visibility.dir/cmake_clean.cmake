file(REMOVE_RECURSE
  "CMakeFiles/eq_loss_visibility.dir/eq_loss_visibility.cpp.o"
  "CMakeFiles/eq_loss_visibility.dir/eq_loss_visibility.cpp.o.d"
  "eq_loss_visibility"
  "eq_loss_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq_loss_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for eq_loss_visibility.
# This may be replaced when dependencies are built.

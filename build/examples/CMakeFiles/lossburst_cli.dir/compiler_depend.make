# Empty compiler generated dependencies file for lossburst_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lossburst_cli.dir/lossburst_cli.cpp.o"
  "CMakeFiles/lossburst_cli.dir/lossburst_cli.cpp.o.d"
  "lossburst_cli"
  "lossburst_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for competition.
# This may be replaced when dependencies are built.

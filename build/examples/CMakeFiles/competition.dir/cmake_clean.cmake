file(REMOVE_RECURSE
  "CMakeFiles/competition.dir/competition.cpp.o"
  "CMakeFiles/competition.dir/competition.cpp.o.d"
  "competition"
  "competition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/competition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

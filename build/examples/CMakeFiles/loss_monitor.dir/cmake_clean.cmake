file(REMOVE_RECURSE
  "CMakeFiles/loss_monitor.dir/loss_monitor.cpp.o"
  "CMakeFiles/loss_monitor.dir/loss_monitor.cpp.o.d"
  "loss_monitor"
  "loss_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

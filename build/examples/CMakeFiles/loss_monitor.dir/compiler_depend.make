# Empty compiler generated dependencies file for loss_monitor.
# This may be replaced when dependencies are built.

# Empty dependencies file for tfrc_streaming.
# This may be replaced when dependencies are built.

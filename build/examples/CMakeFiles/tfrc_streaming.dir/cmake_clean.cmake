file(REMOVE_RECURSE
  "CMakeFiles/tfrc_streaming.dir/tfrc_streaming.cpp.o"
  "CMakeFiles/tfrc_streaming.dir/tfrc_streaming.cpp.o.d"
  "tfrc_streaming"
  "tfrc_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfrc_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/parallel_transfer.dir/parallel_transfer.cpp.o"
  "CMakeFiles/parallel_transfer.dir/parallel_transfer.cpp.o.d"
  "parallel_transfer"
  "parallel_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

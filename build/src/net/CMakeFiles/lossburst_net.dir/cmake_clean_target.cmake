file(REMOVE_RECURSE
  "liblossburst_net.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lossburst_net.dir/link.cpp.o"
  "CMakeFiles/lossburst_net.dir/link.cpp.o.d"
  "CMakeFiles/lossburst_net.dir/network.cpp.o"
  "CMakeFiles/lossburst_net.dir/network.cpp.o.d"
  "CMakeFiles/lossburst_net.dir/queue.cpp.o"
  "CMakeFiles/lossburst_net.dir/queue.cpp.o.d"
  "CMakeFiles/lossburst_net.dir/trace.cpp.o"
  "CMakeFiles/lossburst_net.dir/trace.cpp.o.d"
  "liblossburst_net.a"
  "liblossburst_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for lossburst_net.
# This may be replaced when dependencies are built.

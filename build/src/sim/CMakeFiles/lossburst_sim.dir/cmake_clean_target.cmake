file(REMOVE_RECURSE
  "liblossburst_sim.a"
)

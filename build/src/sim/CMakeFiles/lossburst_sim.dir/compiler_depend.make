# Empty compiler generated dependencies file for lossburst_sim.
# This may be replaced when dependencies are built.

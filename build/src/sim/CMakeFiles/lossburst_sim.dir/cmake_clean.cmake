file(REMOVE_RECURSE
  "CMakeFiles/lossburst_sim.dir/event_queue.cpp.o"
  "CMakeFiles/lossburst_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/lossburst_sim.dir/simulator.cpp.o"
  "CMakeFiles/lossburst_sim.dir/simulator.cpp.o.d"
  "liblossburst_sim.a"
  "liblossburst_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

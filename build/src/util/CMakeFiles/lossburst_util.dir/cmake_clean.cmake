file(REMOVE_RECURSE
  "CMakeFiles/lossburst_util.dir/ascii_chart.cpp.o"
  "CMakeFiles/lossburst_util.dir/ascii_chart.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/csv.cpp.o"
  "CMakeFiles/lossburst_util.dir/csv.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/histogram.cpp.o"
  "CMakeFiles/lossburst_util.dir/histogram.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/log.cpp.o"
  "CMakeFiles/lossburst_util.dir/log.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/rng.cpp.o"
  "CMakeFiles/lossburst_util.dir/rng.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/stats.cpp.o"
  "CMakeFiles/lossburst_util.dir/stats.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/thread_pool.cpp.o"
  "CMakeFiles/lossburst_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/lossburst_util.dir/time.cpp.o"
  "CMakeFiles/lossburst_util.dir/time.cpp.o.d"
  "liblossburst_util.a"
  "liblossburst_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

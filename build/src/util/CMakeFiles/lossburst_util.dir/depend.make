# Empty dependencies file for lossburst_util.
# This may be replaced when dependencies are built.

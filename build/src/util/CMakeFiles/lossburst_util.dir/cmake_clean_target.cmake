file(REMOVE_RECURSE
  "liblossburst_util.a"
)

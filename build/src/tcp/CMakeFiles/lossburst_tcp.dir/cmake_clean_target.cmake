file(REMOVE_RECURSE
  "liblossburst_tcp.a"
)

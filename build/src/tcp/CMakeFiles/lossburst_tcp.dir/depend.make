# Empty dependencies file for lossburst_tcp.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/cbr.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/cbr.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/cbr.cpp.o.d"
  "/root/repo/src/tcp/onoff.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/onoff.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/onoff.cpp.o.d"
  "/root/repo/src/tcp/receiver.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/receiver.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/receiver.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/rtt_estimator.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/sack.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/sack.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/sack.cpp.o.d"
  "/root/repo/src/tcp/sender.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/sender.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/sender.cpp.o.d"
  "/root/repo/src/tcp/tfrc.cpp" "src/tcp/CMakeFiles/lossburst_tcp.dir/tfrc.cpp.o" "gcc" "src/tcp/CMakeFiles/lossburst_tcp.dir/tfrc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lossburst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lossburst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lossburst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

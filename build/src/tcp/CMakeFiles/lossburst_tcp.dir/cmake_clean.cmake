file(REMOVE_RECURSE
  "CMakeFiles/lossburst_tcp.dir/cbr.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/cbr.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/onoff.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/onoff.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/receiver.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/receiver.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/rtt_estimator.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/sack.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/sack.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/sender.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/sender.cpp.o.d"
  "CMakeFiles/lossburst_tcp.dir/tfrc.cpp.o"
  "CMakeFiles/lossburst_tcp.dir/tfrc.cpp.o.d"
  "liblossburst_tcp.a"
  "liblossburst_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

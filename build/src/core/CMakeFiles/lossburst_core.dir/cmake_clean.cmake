file(REMOVE_RECURSE
  "CMakeFiles/lossburst_core.dir/burstiness_study.cpp.o"
  "CMakeFiles/lossburst_core.dir/burstiness_study.cpp.o.d"
  "CMakeFiles/lossburst_core.dir/competition_experiment.cpp.o"
  "CMakeFiles/lossburst_core.dir/competition_experiment.cpp.o.d"
  "CMakeFiles/lossburst_core.dir/dumbbell_experiment.cpp.o"
  "CMakeFiles/lossburst_core.dir/dumbbell_experiment.cpp.o.d"
  "CMakeFiles/lossburst_core.dir/loss_visibility.cpp.o"
  "CMakeFiles/lossburst_core.dir/loss_visibility.cpp.o.d"
  "CMakeFiles/lossburst_core.dir/parallel_transfer.cpp.o"
  "CMakeFiles/lossburst_core.dir/parallel_transfer.cpp.o.d"
  "CMakeFiles/lossburst_core.dir/shuffle_experiment.cpp.o"
  "CMakeFiles/lossburst_core.dir/shuffle_experiment.cpp.o.d"
  "liblossburst_core.a"
  "liblossburst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lossburst_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblossburst_core.a"
)

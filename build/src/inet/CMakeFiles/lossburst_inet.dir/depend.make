# Empty dependencies file for lossburst_inet.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lossburst_inet.dir/campaign.cpp.o"
  "CMakeFiles/lossburst_inet.dir/campaign.cpp.o.d"
  "CMakeFiles/lossburst_inet.dir/path.cpp.o"
  "CMakeFiles/lossburst_inet.dir/path.cpp.o.d"
  "CMakeFiles/lossburst_inet.dir/sites.cpp.o"
  "CMakeFiles/lossburst_inet.dir/sites.cpp.o.d"
  "liblossburst_inet.a"
  "liblossburst_inet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_inet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblossburst_inet.a"
)

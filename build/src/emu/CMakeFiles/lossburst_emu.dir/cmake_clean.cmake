file(REMOVE_RECURSE
  "CMakeFiles/lossburst_emu.dir/dummynet.cpp.o"
  "CMakeFiles/lossburst_emu.dir/dummynet.cpp.o.d"
  "liblossburst_emu.a"
  "liblossburst_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

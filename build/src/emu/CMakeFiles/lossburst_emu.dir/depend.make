# Empty dependencies file for lossburst_emu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblossburst_emu.a"
)

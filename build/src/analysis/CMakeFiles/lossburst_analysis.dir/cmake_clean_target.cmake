file(REMOVE_RECURSE
  "liblossburst_analysis.a"
)

# Empty dependencies file for lossburst_analysis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dispersion.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/dispersion.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/dispersion.cpp.o.d"
  "/root/repo/src/analysis/episodes.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/episodes.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/episodes.cpp.o.d"
  "/root/repo/src/analysis/gilbert.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/gilbert.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/gilbert.cpp.o.d"
  "/root/repo/src/analysis/loss_intervals.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/loss_intervals.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/loss_intervals.cpp.o.d"
  "/root/repo/src/analysis/trace_inference.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/trace_inference.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/trace_inference.cpp.o.d"
  "/root/repo/src/analysis/trace_io.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/trace_io.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/trace_io.cpp.o.d"
  "/root/repo/src/analysis/validate.cpp" "src/analysis/CMakeFiles/lossburst_analysis.dir/validate.cpp.o" "gcc" "src/analysis/CMakeFiles/lossburst_analysis.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lossburst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

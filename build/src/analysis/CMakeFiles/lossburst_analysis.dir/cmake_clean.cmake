file(REMOVE_RECURSE
  "CMakeFiles/lossburst_analysis.dir/dispersion.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/dispersion.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/episodes.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/episodes.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/gilbert.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/gilbert.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/loss_intervals.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/loss_intervals.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/trace_inference.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/trace_inference.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/trace_io.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/trace_io.cpp.o.d"
  "CMakeFiles/lossburst_analysis.dir/validate.cpp.o"
  "CMakeFiles/lossburst_analysis.dir/validate.cpp.o.d"
  "liblossburst_analysis.a"
  "liblossburst_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossburst_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

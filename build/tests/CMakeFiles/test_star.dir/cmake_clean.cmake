file(REMOVE_RECURSE
  "CMakeFiles/test_star.dir/test_star.cpp.o"
  "CMakeFiles/test_star.dir/test_star.cpp.o.d"
  "test_star"
  "test_star.pdb"
  "test_star[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_cbr_onoff.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_cbr_onoff.dir/test_cbr_onoff.cpp.o"
  "CMakeFiles/test_cbr_onoff.dir/test_cbr_onoff.cpp.o.d"
  "test_cbr_onoff"
  "test_cbr_onoff.pdb"
  "test_cbr_onoff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbr_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/test_misc.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/test_misc.dir/test_misc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lossburst_core.dir/DependInfo.cmake"
  "/root/repo/build/src/inet/CMakeFiles/lossburst_inet.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/lossburst_emu.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/lossburst_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lossburst_net.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lossburst_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lossburst_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lossburst_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

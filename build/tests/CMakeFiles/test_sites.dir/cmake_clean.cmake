file(REMOVE_RECURSE
  "CMakeFiles/test_sites.dir/test_sites.cpp.o"
  "CMakeFiles/test_sites.dir/test_sites.cpp.o.d"
  "test_sites"
  "test_sites.pdb"
  "test_sites[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_sites.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_dispersion_io.dir/test_dispersion_io.cpp.o"
  "CMakeFiles/test_dispersion_io.dir/test_dispersion_io.cpp.o.d"
  "test_dispersion_io"
  "test_dispersion_io.pdb"
  "test_dispersion_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dispersion_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_dispersion_io.
# This may be replaced when dependencies are built.

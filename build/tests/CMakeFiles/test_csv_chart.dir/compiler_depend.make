# Empty compiler generated dependencies file for test_csv_chart.
# This may be replaced when dependencies are built.

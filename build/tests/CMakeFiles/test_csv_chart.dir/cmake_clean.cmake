file(REMOVE_RECURSE
  "CMakeFiles/test_csv_chart.dir/test_csv_chart.cpp.o"
  "CMakeFiles/test_csv_chart.dir/test_csv_chart.cpp.o.d"
  "test_csv_chart"
  "test_csv_chart.pdb"
  "test_csv_chart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_chart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

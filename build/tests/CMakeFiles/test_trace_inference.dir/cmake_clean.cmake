file(REMOVE_RECURSE
  "CMakeFiles/test_trace_inference.dir/test_trace_inference.cpp.o"
  "CMakeFiles/test_trace_inference.dir/test_trace_inference.cpp.o.d"
  "test_trace_inference"
  "test_trace_inference.pdb"
  "test_trace_inference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_trace_inference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_episodes.dir/test_episodes.cpp.o"
  "CMakeFiles/test_episodes.dir/test_episodes.cpp.o.d"
  "test_episodes"
  "test_episodes.pdb"
  "test_episodes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_episodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_episodes.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_gilbert.dir/test_gilbert.cpp.o"
  "CMakeFiles/test_gilbert.dir/test_gilbert.cpp.o.d"
  "test_gilbert"
  "test_gilbert.pdb"
  "test_gilbert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gilbert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_gilbert.
# This may be replaced when dependencies are built.

// lossburst_serve: run a faulted dumbbell while serving live telemetry and
// runtime control over NDJSON/TCP (DESIGN.md §13). Connect with
// tools/obs_client.py, or any line-oriented TCP client:
//
//   ./lossburst_serve --port 7787 --duration-s 60 &
//   python3 tools/obs_client.py --port 7787 watch
//
// With --wait-run the simulation is built but does not start until a client
// sends {"cmd":"run"} — the window in which control commands (inject-plan,
// add-flow, ...) land at the t = 0 boundary, making the run byte-identical
// to one configured cold with the same settings.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "analysis/gilbert.hpp"
#include "fault/plan.hpp"
#include "obs/live/publisher.hpp"
#include "serve/scenario.hpp"
#include "serve/server.hpp"

using namespace lossburst;

namespace {

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --port N         listen port (default 0 = ephemeral, printed)\n"
      "  --seed N         simulation seed (default 1)\n"
      "  --flows N        persistent TCP flows (default 4)\n"
      "  --slots N        dynamic add-flow slots (default 4)\n"
      "  --duration-s N   simulated horizon in seconds (default 30)\n"
      "  --interval-ms N  publish/sample interval (default 100)\n"
      "  --fault-plan F   cold fault plan file applied at construction\n"
      "  --obs-dir D      also export CSV/trace artifacts to D\n"
      "  --wait-run       hold the simulation until a client sends run\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  serve::ServeScenarioConfig cfg;
  bool wait_run = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--port") {
      port = static_cast<std::uint16_t>(std::atoi(next()));
    } else if (a == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (a == "--flows") {
      cfg.tcp_flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--slots") {
      cfg.dynamic_slots = static_cast<std::size_t>(std::atoll(next()));
    } else if (a == "--duration-s") {
      cfg.duration = util::Duration::seconds(std::atoll(next()));
    } else if (a == "--interval-ms") {
      cfg.obs.interval = util::Duration::millis(std::atoll(next()));
    } else if (a == "--fault-plan") {
      const fault::PlanParseResult parsed = fault::parse_plan_file(next());
      if (!parsed.ok) {
        std::fprintf(stderr, "fault plan: %s\n", parsed.error.c_str());
        return 2;
      }
      cfg.fault = parsed.plan;
    } else if (a == "--obs-dir") {
      cfg.obs.dir = next();
      cfg.obs.prefix = "serve_";
    } else if (a == "--wait-run") {
      wait_run = true;
    } else {
      usage(argv[0]);
      return a == "--help" || a == "-h" ? 0 : 2;
    }
  }

  obs::live::LivePublisher pub;
  serve::ControlQueue control;
  cfg.obs.live = &pub;

  serve::ServeScenario scenario(cfg, &control);
  serve::TelemetryServer server(pub, control, {.port = port});
  server.start();
  std::printf("lossburst_serve: listening on 127.0.0.1:%u (seed=%llu, %.0fs)\n",
              server.port(), static_cast<unsigned long long>(cfg.seed),
              cfg.duration.seconds());
  std::fflush(stdout);

  if (wait_run) {
    std::puts("waiting for {\"cmd\":\"run\"} ...");
    std::fflush(stdout);
    while (!server.run_requested() && !server.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  if (!server.stop_requested()) scenario.run(server.stop_flag());

  std::printf("published %llu ring records over %llu intervals (%zu columns)\n",
              static_cast<unsigned long long>(pub.ring().published()),
              static_cast<unsigned long long>(pub.intervals_published()),
              pub.schema().size());
  const std::vector<bool> lost = scenario.probe_loss_indicator();
  std::size_t losses = 0;
  for (const bool b : lost) losses += b ? 1 : 0;
  std::printf("done: simulated %.1fs, probe %llu pkts (%zu lost), "
              "%llu control commands, %zu clients\n",
              scenario.sim().now().seconds(),
              static_cast<unsigned long long>(scenario.probe_packets_sent()),
              losses,
              static_cast<unsigned long long>(scenario.control_commands_applied()),
              server.clients_served());
  if (losses > 0) {
    const analysis::GilbertFit fit = analysis::fit_gilbert(lost);
    std::printf("probe gilbert fit: p=%.6f q=%.6f loss=%.6f\n",
                fit.p_good_to_bad, fit.p_bad_to_good, fit.loss_rate);
  }
  server.stop();
  return 0;
}

// Example: burst-adaptive streaming FEC vs the burst-oblivious baselines
// (DESIGN.md §15, EXPERIMENTS.md FIG9).
//
// One CBR symbol stream crosses a 200 ms-RTT path whose forward link runs a
// Gilbert loss channel (mean burst 4 packets, ~2% loss). Three repair
// disciplines spend the same redundancy budget (12.5%):
//
//   arq       pure NACK-driven retransmission — every loss costs >= 1 RTT
//   block     fixed block FEC, k=16 + r=2 — covers 2 losses per generation,
//             so a typical burst of 4 still falls back to ARQ
//   adaptive  sliding-window RLC whose repair spacing, clustering, and
//             window depth track the receiver's fitted Gilbert (p, q)
//
// The figure of merit is in-order delivery delay against the deterministic
// send schedule. A second scenario adds link flaps: fixed-rate FEC without
// an ARQ fallback stalls permanently, while the adaptive controller degrades
// to retransmission and completes.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/fec_experiment.hpp"

using namespace lossburst;

namespace {

struct Row {
  const char* label;
  core::FecRunResult r;
};

core::FecRunConfig base_config() {
  core::FecRunConfig cfg;
  cfg.seed = 21;
  cfg.fec.symbols = 5000;
  cfg.fec.interval = util::Duration::millis(2);
  cfg.horizon = util::Duration::seconds(120);
  // Matched Gilbert channel on the forward link: p=0.005, q=0.25 -> mean
  // burst length 4, stationary loss ~2%.
  fault::GilbertSpec g;
  g.link = "path.fwd";
  g.p_good_to_bad = 0.005;
  g.p_bad_to_good = 0.25;
  cfg.plan.gilbert.push_back(g);
  return cfg;
}

core::FecRunConfig arq_config() {
  core::FecRunConfig cfg = base_config();
  cfg.fec.mode = fec::FecMode::kArq;
  return cfg;
}

core::FecRunConfig block_config(bool arq_fallback) {
  core::FecRunConfig cfg = base_config();
  cfg.fec.mode = fec::FecMode::kBlock;
  cfg.fec.block_k = 16;  // r/k = 2/16 = 12.5%: the shared redundancy budget
  cfg.fec.block_r = 2;
  cfg.fec.arq_fallback = arq_fallback;
  return cfg;
}

core::FecRunConfig adaptive_config() {
  core::FecRunConfig cfg = base_config();
  cfg.fec.mode = fec::FecMode::kSliding;
  cfg.fec.adaptive = true;
  cfg.fec.policy.budget = 0.125;  // same 12.5% ceiling as block r/k
  return cfg;
}

void add_flaps(core::FecRunConfig& cfg) {
  // Two 1.5 s outages inside the 10 s stream: each erases ~750 consecutive
  // symbols — an order of magnitude beyond what any 12.5%-redundancy code
  // can cover. The Gilbert channel is removed so the contrast is purely
  // about outage handling.
  cfg.plan.gilbert.clear();
  fault::FlapSpec f;
  f.link = "path.fwd";
  f.at_s = 3.0;
  f.down_s = 1.5;
  f.up_s = 2.0;
  f.cycles = 2;
  f.policy = fault::DownPolicy::kDrop;
  cfg.plan.flaps.push_back(f);
}

void print_table(const std::vector<Row>& rows) {
  std::printf("  %-9s %9s %7s %7s %7s %7s %8s %8s %6s\n", "mode", "delivered",
              "mean", "p50", "p95", "p99", "max", "overhead", "retx");
  std::printf("  %-9s %9s %7s %7s %7s %7s %8s %8s %6s\n", "", "", "(ms)",
              "(ms)", "(ms)", "(ms)", "(ms)", "", "");
  for (const Row& row : rows) {
    const core::FecRunResult& r = row.r;
    std::printf("  %-9s %4llu/%-4llu %7.1f %7.1f %7.1f %7.1f %8.1f %7.1f%% %6llu%s\n",
                row.label, static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.symbols), r.mean_delay_ms,
                r.p50_delay_ms, r.p95_delay_ms, r.p99_delay_ms, r.max_delay_ms,
                r.overhead * 100.0, static_cast<unsigned long long>(r.retx_sent),
                r.completed ? "" : "  [INCOMPLETE]");
  }
}

/// ASCII CDF of in-order delivery delay, one curve per mode.
void print_cdf(const std::vector<Row>& rows) {
  const double edges[] = {105, 110, 120, 150, 200, 300, 400, 500, 700, 1000};
  std::printf("  %-9s", "P(d<=x)");
  for (double e : edges) std::printf(" %6.0f", e);
  std::printf("  ms\n");
  for (const Row& row : rows) {
    std::printf("  %-9s", row.label);
    std::vector<double> sorted = row.r.delays_ms;
    std::sort(sorted.begin(), sorted.end());
    for (double e : edges) {
      const auto it = std::upper_bound(sorted.begin(), sorted.end(), e);
      const double frac =
          sorted.empty() ? 0.0
                         : static_cast<double>(it - sorted.begin()) /
                               static_cast<double>(row.r.symbols);
      std::printf(" %5.1f%%", frac * 100.0);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::puts("Streaming FEC on a 10 Mbps / 200 ms-RTT path, Gilbert(p=0.005,");
  std::puts("q=0.25) forward loss: mean burst 4 pkts, ~2% loss. 5000 symbols");
  std::puts("at 2 ms. All modes share a 12.5% redundancy budget.\n");

  std::vector<Row> rows;
  {
    core::FecRunConfig cfg = arq_config();
    rows.push_back({"arq", core::run_fec_stream(cfg)});
  }
  {
    core::FecRunConfig cfg = block_config(/*arq_fallback=*/true);
    rows.push_back({"block", core::run_fec_stream(cfg)});
  }
  {
    core::FecRunConfig cfg = adaptive_config();
    rows.push_back({"adaptive", core::run_fec_stream(cfg)});
  }

  std::puts("[matched Gilbert] in-order delivery delay:");
  print_table(rows);
  std::puts("");
  print_cdf(rows);

  const auto& fit = rows.back().r.receiver_fit;
  std::printf("\nadaptive sink's fitted channel: p=%.4f q=%.3f (injected "
              "p=0.0050 q=0.250)%s\n",
              fit.p_good_to_bad, fit.p_bad_to_good,
              rows.back().r.fit_held ? " [held]" : "");

  std::puts("\n[link flaps] clean path + two 1.5 s outages; fixed-rate");
  std::puts("block FEC without ARQ fallback cannot recover an outage:");
  std::vector<Row> flap_rows;
  {
    core::FecRunConfig cfg = block_config(/*arq_fallback=*/false);
    add_flaps(cfg);
    flap_rows.push_back({"block-nf", core::run_fec_stream(cfg)});
  }
  {
    core::FecRunConfig cfg = adaptive_config();
    add_flaps(cfg);
    flap_rows.push_back({"adaptive", core::run_fec_stream(cfg)});
  }
  print_table(flap_rows);
  std::printf("  adaptive controller degraded to ARQ during outages: %s\n",
              flap_rows.back().r.degraded ? "yes (still degraded at end)"
                                          : "yes, and recovered");

  std::puts("\nLesson (paper §3/§6): loss is bursty, and repair that ignores");
  std::puts("burst length pays for it in delay. Fitting the Gilbert channel");
  std::puts("online and matching repair clustering to the fitted burst length");
  std::puts("turns the same redundancy budget into strictly better in-order");
  std::puts("delivery delay — and an explicit ARQ degradation path is what");
  std::puts("survives outages no code rate can cover.");
  return 0;
}

// Example: measuring a single internet path's loss process with CBR probes,
// the paper's §3.1 methodology, end to end:
//
//   1. pick two PlanetLab sites and estimate the path RTT,
//   2. probe the path twice (48 B and 400 B packets),
//   3. cross-validate the two traces,
//   4. analyze inter-loss intervals and fit a Gilbert-Elliott model.
#include <cstdio>
#include <iostream>

#include "core/burstiness_study.hpp"
#include "inet/path.hpp"
#include "inet/sites.hpp"

using namespace lossburst;

int main() {
  const auto& sites = inet::planetlab_sites();
  const inet::Site& from = sites[0];   // UCLA
  const inet::Site& to = sites[24];    // CESNET, Czech Republic
  const util::Duration rtt = inet::estimate_rtt(from, to);

  std::printf("Path: %s -> %s\n", from.hostname.c_str(), to.hostname.c_str());
  std::printf("Great-circle distance: %.0f km, estimated base RTT: %.1f ms\n\n",
              inet::great_circle_km(from, to), rtt.millis());

  inet::PathConfig cfg;
  cfg.rtt = rtt;
  cfg.seed = 0xCE5;
  cfg.hops = 2;
  cfg.probe_interval = util::Duration::millis(10);
  cfg.probe_duration = util::Duration::seconds(60);

  std::puts("Probing with 48-byte packets...");
  cfg.probe_bytes = 48;
  const auto small_run = inet::run_path_probe(cfg);
  std::puts("Probing with 400-byte packets...");
  cfg.probe_bytes = 400;
  const auto large_run = inet::run_path_probe(cfg);

  std::printf("\n48B run: %llu/%llu lost (%.2f%%);  400B run: %llu/%llu lost (%.2f%%)\n",
              static_cast<unsigned long long>(small_run.probes_lost),
              static_cast<unsigned long long>(small_run.probes_sent),
              small_run.loss_rate() * 100.0,
              static_cast<unsigned long long>(large_run.probes_lost),
              static_cast<unsigned long long>(large_run.probes_sent),
              large_run.loss_rate() * 100.0);

  const auto verdict = analysis::validate_probe_pair(small_run.summary(),
                                                     large_run.summary());
  std::printf("cross-validation: %s (%s)\n\n", verdict.validated ? "ACCEPTED" : "REJECTED",
              verdict.reason);

  const auto a = analysis::analyze_loss_intervals(large_run.loss_times_s, large_run.rtt_s);
  std::cout << core::summarize_burstiness(a) << "\n\n";
  std::cout << core::render_loss_pdf_chart(a, "inter-loss PDF for this path") << "\n";

  const auto fit = analysis::fit_gilbert(large_run.loss_indicator);
  std::printf("Gilbert-Elliott fit: P(G->B)=%.4f P(B->G)=%.4f mean burst %.2f pkts "
              "(%.1fx an independent-loss process)\n",
              fit.p_good_to_bad, fit.p_bad_to_good, fit.mean_burst_length(),
              fit.burstiness_vs_bernoulli());
  return 0;
}

// Example: one large synthetic-internet measurement campaign on the sharded
// parallel engine (DESIGN.md §12).
//
//   shard_campaign [--shards N] [--sites N] [--flows N] [--regions N]
//                  [--duration-s S] [--seed N] [--fault]
//                  [--obs-dir DIR] [--obs-interval MS]
//
// The topology — regional 10G backbones plus per-site access links — is
// partitioned across N shards along the highest-latency backbone cuts; each
// shard advances on its own thread under conservative-lookahead epochs. The
// printed digest is byte-identical for any --shards value, which is the
// point: parallelism is an engine property here, not a statistics property.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "analysis/gilbert.hpp"
#include "inet/shard_campaign.hpp"

using namespace lossburst;

namespace {

long long parse_ll(const char* flag, const char* value) {
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, value);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  inet::ShardCampaignConfig cfg;
  cfg.fault_backbone = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", a);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(a, "--shards") == 0) {
      cfg.shards = static_cast<std::size_t>(parse_ll(a, next()));
    } else if (std::strcmp(a, "--sites") == 0) {
      cfg.sites = static_cast<std::size_t>(parse_ll(a, next()));
    } else if (std::strcmp(a, "--flows") == 0) {
      cfg.flows = static_cast<std::size_t>(parse_ll(a, next()));
    } else if (std::strcmp(a, "--regions") == 0) {
      cfg.regions = static_cast<std::size_t>(parse_ll(a, next()));
    } else if (std::strcmp(a, "--duration-s") == 0) {
      cfg.duration = util::Duration::seconds(parse_ll(a, next()));
    } else if (std::strcmp(a, "--seed") == 0) {
      cfg.seed = static_cast<std::uint64_t>(parse_ll(a, next()));
    } else if (std::strcmp(a, "--fault") == 0) {
      cfg.fault_backbone = true;
    } else if (std::strcmp(a, "--obs-dir") == 0) {
      cfg.obs.dir = next();
      cfg.obs.prefix = "campaign_";
    } else if (std::strcmp(a, "--obs-interval") == 0) {
      cfg.obs.interval = util::Duration::millis(parse_ll(a, next()));
    } else if (std::strcmp(a, "--help") == 0) {
      std::puts(
          "usage: shard_campaign [--shards N] [--sites N] [--flows N]\n"
          "                      [--regions N] [--duration-s S] [--seed N] [--fault]\n"
          "                      [--obs-dir DIR] [--obs-interval MS]");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' (see --help)\n", a);
      return 2;
    }
  }

  std::printf("shard campaign: %zu sites in %zu regions, %zu probe flows, "
              "%lld s, %zu shard(s)%s\n",
              cfg.sites, cfg.regions, cfg.flows,
              static_cast<long long>(cfg.duration.ns() / 1'000'000'000),
              cfg.shards, cfg.fault_backbone ? ", Gilbert fault on bb.0.1" : "");

  inet::ShardCampaignResult res;
  try {
    res = inet::run_shard_campaign(cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }

  std::printf("events executed : %llu\n",
              static_cast<unsigned long long>(res.events));
  if (cfg.shards > 1) {
    std::printf("epochs          : %llu (lookahead %.3f ms)\n",
                static_cast<unsigned long long>(res.epochs),
                res.lookahead.millis());
  } else {
    std::puts("epochs          : n/a (serial bypass at --shards 1)");
  }
  std::printf("probes          : %llu sent, %llu received (%.3f%% lost)\n",
              static_cast<unsigned long long>(res.probes_sent),
              static_cast<unsigned long long>(res.probes_received),
              res.probes_sent == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(res.probes_sent - res.probes_received) /
                        static_cast<double>(res.probes_sent));
  std::printf("digest          : %016llx  (byte-identical for any --shards)\n",
              static_cast<unsigned long long>(res.digest));
  if (!cfg.obs.dir.empty()) {
    std::printf("telemetry       : %s/campaign_s<k>_intervals.csv (per shard) "
                "+ campaign_trace.json (one pid per shard)\n",
                cfg.obs.dir.c_str());
  }

  if (cfg.fault_backbone) {
    std::vector<bool> pooled;
    for (const auto& f : res.flows) {
      if (!f.crosses_fault_link) continue;
      pooled.insert(pooled.end(), f.loss_indicator.begin(), f.loss_indicator.end());
    }
    std::printf("fault           : %llu Gilbert drops on bb.0.1\n",
                static_cast<unsigned long long>(res.fault_totals.gilbert_drops));
    if (pooled.size() > 100) {
      const auto fit = analysis::fit_gilbert(pooled);
      std::printf("fit (crossing flows pooled): P(G->B)=%.4f P(B->G)=%.4f "
                  "loss %.3f%%\n",
                  fit.p_good_to_bad, fit.p_bad_to_good, fit.loss_rate * 100.0);
    }
  }
  return 0;
}

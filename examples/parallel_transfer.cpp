// Example: GridFTP/GFS-style parallel data transfer (§4.2).
//
// Splits a 64 MB payload across N TCP flows and reports the completion
// latency against the wire-rate lower bound, showing how loss burstiness in
// slow start makes latency unpredictable — and how choosing a paced sender
// tightens the spread.
#include <cstdio>

#include "core/burstiness_study.hpp"
#include "util/stats.hpp"

using namespace lossburst;

namespace {

void run_mode(const char* label, tcp::EmissionMode emission) {
  std::printf("%s\n", label);
  std::printf("%8s %8s %14s %14s %12s\n", "flows", "rtt_ms", "latency_s", "normalized",
              "flows w/loss");
  for (int rtt_ms : {10, 200}) {
    for (std::size_t flows : {4u, 16u}) {
      core::ParallelTransferConfig cfg;
      cfg.seed = 2024;
      cfg.flows = flows;
      cfg.rtt = util::Duration::millis(rtt_ms);
      cfg.emission = emission;
      const auto r = core::run_parallel_transfer(cfg);
      std::printf("%8zu %8d %14.2f %14.2f %9zu/%zu%s\n", flows, rtt_ms, r.latency_s,
                  r.normalized_latency, r.flows_with_loss, flows,
                  r.all_completed ? "" : "  (timed out!)");
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Parallel transfer of 64 MB over a 100 Mbps bottleneck.\n");
  const std::uint64_t segments = ((64ULL << 20) + net::kMssBytes - 1) / net::kMssBytes;
  const double bound_s =
      static_cast<double>(segments) * net::kDataPacketBytes * 8.0 / 100e6;
  std::printf("Wire-rate lower bound: %.2f s (payload-only: 5.37 s; paper quotes 5.39 s)\n\n",
              bound_s);

  run_mode("Window-based NewReno (standard TCP):", tcp::EmissionMode::kWindowBurst);
  run_mode("Paced senders (rate-based):", tcp::EmissionMode::kPaced);

  std::puts("Lesson (paper §4.2): at large RTT, whichever flows lose packets during");
  std::puts("slow start fall to half rate and gate the whole transfer; with many");
  std::puts("flows and bursty losses, completion time is hard to predict.");
  return 0;
}

// Example: GridFTP/GFS-style parallel data transfer (§4.2).
//
// Splits a 64 MB payload across N TCP flows and reports the completion
// latency against the wire-rate lower bound, showing how loss burstiness in
// slow start makes latency unpredictable — and how choosing a paced sender
// tightens the spread. The final section injects a link-flap fault plan
// (DESIGN.md §10) and contrasts a plain transfer — which stalls, because
// every stripe's RTO backs off toward the 60 s cap and sleeps straight
// through the link's up intervals — with the robust transfer's watchdog +
// retry + re-striping, which completes degraded.
#include <cstdio>

#include "core/burstiness_study.hpp"
#include "util/stats.hpp"

using namespace lossburst;

namespace {

void run_mode(const char* label, tcp::EmissionMode emission) {
  std::printf("%s\n", label);
  std::printf("%8s %8s %14s %14s %12s\n", "flows", "rtt_ms", "latency_s", "normalized",
              "flows w/loss");
  for (int rtt_ms : {10, 200}) {
    for (std::size_t flows : {4u, 16u}) {
      core::ParallelTransferConfig cfg;
      cfg.seed = 2024;
      cfg.flows = flows;
      cfg.rtt = util::Duration::millis(rtt_ms);
      cfg.emission = emission;
      const auto r = core::run_parallel_transfer(cfg);
      std::printf("%8zu %8d %14.2f %14.2f %9zu/%zu%s\n", flows, rtt_ms, r.latency_s,
                  r.normalized_latency, r.flows_with_loss, flows,
                  r.all_completed ? "" : "  (timed out!)");
    }
  }
  std::printf("\n");
}

void run_chaos() {
  std::printf("Chaos: bottleneck flaps 15 s down / 5 s up from t=2 s (drop policy).\n");
  std::printf("%10s %14s %12s %10s %10s\n", "mode", "latency_s", "completed", "retries",
              "restripes");
  for (const bool robust : {false, true}) {
    core::ParallelTransferConfig cfg;
    cfg.seed = 2024;
    cfg.flows = 4;
    cfg.rtt = util::Duration::millis(50);
    cfg.total_bytes = 64ULL << 20;
    cfg.timeout = util::Duration::seconds(240);
    cfg.robust = robust;
    fault::FlapSpec flap;
    flap.link = "bottleneck.fwd";
    flap.at_s = 2.0;
    flap.down_s = 15.0;
    flap.up_s = 5.0;
    flap.cycles = 12;
    cfg.fault.flaps.push_back(flap);
    const auto r = core::run_parallel_transfer(cfg);
    std::printf("%10s %14.2f %12s %10zu %10zu\n", robust ? "robust" : "plain",
                r.latency_s, r.all_completed ? "yes" : "TIMED OUT", r.stripes_retried,
                r.restripes);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Parallel transfer of 64 MB over a 100 Mbps bottleneck.\n");
  const std::uint64_t segments = ((64ULL << 20) + net::kMssBytes - 1) / net::kMssBytes;
  const double bound_s =
      static_cast<double>(segments) * net::kDataPacketBytes * 8.0 / 100e6;
  std::printf("Wire-rate lower bound: %.2f s (payload-only: 5.37 s; paper quotes 5.39 s)\n\n",
              bound_s);

  run_mode("Window-based NewReno (standard TCP):", tcp::EmissionMode::kWindowBurst);
  run_mode("Paced senders (rate-based):", tcp::EmissionMode::kPaced);
  run_chaos();

  std::puts("Lesson (paper §4.2): at large RTT, whichever flows lose packets during");
  std::puts("slow start fall to half rate and gate the whole transfer; with many");
  std::puts("flows and bursty losses, completion time is hard to predict. Under link");
  std::puts("flaps, a transfer needs application-level retries to finish at all.");
  return 0;
}

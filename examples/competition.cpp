// Example: mixing rate-based and window-based congestion control.
//
// A distributed application that uses TFRC-controlled UDP for media and
// window-based TCP for bulk data (the §5 scenario) will see its rate-based
// traffic starved. This example demonstrates the problem and the two fixes
// §5 proposes: make everything paced, or deploy a congestion signal that
// reaches every flow (persistent ECN).
#include <cstdio>

#include "core/burstiness_study.hpp"

using namespace lossburst;

namespace {

void run_and_report(const char* label, net::QueueKind queue, bool ecn) {
  core::CompetitionConfig cfg;
  cfg.seed = 17;
  cfg.paced_flows = 8;
  cfg.window_flows = 8;
  cfg.rtt = util::Duration::millis(50);
  cfg.duration = util::Duration::seconds(30);
  cfg.queue = queue;
  cfg.ecn = ecn;
  const auto r = core::run_competition(cfg);
  std::printf("%-28s rate-based %5.1f Mbps | window-based %5.1f Mbps | deficit %5.1f%%\n",
              label, r.paced_mean_mbps, r.window_mean_mbps, r.paced_deficit * 100.0);
}

}  // namespace

int main() {
  std::puts("8 rate-based (paced) vs 8 window-based flows, 100 Mbps, 50 ms RTT\n");
  run_and_report("DropTail (the problem):", net::QueueKind::kDropTail, false);
  run_and_report("Persistent ECN (fix #1):", net::QueueKind::kPersistentEcn, true);
  run_and_report("RED-ECN (fix #2):", net::QueueKind::kRedEcn, true);

  std::puts("\nLesson (paper §5): rate-based and window-based implementations should");
  std::puts("not be mixed over a DropTail bottleneck; if they must coexist, deploy a");
  std::puts("congestion signal that covers all flows for a full RTT.");
  return 0;
}

// Example: the §5 mixing scenario — a media stream on TFRC-controlled UDP
// sharing the bottleneck with bulk TCP transfers.
//
// "If a distributed application has to use both UDP (controlled by the
// rate-based TFRC), and TCP (controlled by window-based implementation) in
// the data communication, TFRC will have unexpectedly low throughput."
//
// The example measures the TFRC stream's rate and smoothness against its
// fair share, then applies the paper's own remedy: replace the bulk TCP
// senders with paced ones.
#include <cstdio>
#include <memory>
#include <vector>

#include "core/noise.hpp"
#include "net/network.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"
#include "util/stats.hpp"

using namespace lossburst;
using util::Duration;
using util::TimePoint;

namespace {

struct Outcome {
  double tfrc_mbps;
  double tcp_mbps_per_flow;
  double tfrc_rate_cov;  ///< smoothness of the allowed rate (media quality)
};

Outcome run(bool paced_bulk) {
  sim::Simulator sim(505);
  net::Network network(sim);
  net::DumbbellConfig dc;
  dc.flow_count = 8;  // 1 TFRC stream + 7 bulk TCP flows
  dc.access_delays.assign(8, Duration::millis(24));
  net::Dumbbell bell = net::build_dumbbell(network, dc);

  tcp::TfrcFlow stream(sim, 1, bell.fwd_routes[0], bell.rev_routes[0]);
  stream.sender().start(TimePoint::zero());

  std::vector<std::unique_ptr<tcp::TcpFlow>> bulk;
  util::Rng rng = sim.rng().split(1);
  for (std::size_t i = 1; i < 8; ++i) {
    tcp::TcpSender::Params sp;
    sp.emission = paced_bulk ? tcp::EmissionMode::kPaced : tcp::EmissionMode::kWindowBurst;
    sp.pacing_rtt_hint = Duration::millis(50);
    bulk.push_back(std::make_unique<tcp::TcpFlow>(sim, static_cast<net::FlowId>(i + 1),
                                                  bell.fwd_routes[i], bell.rev_routes[i], sp));
    bulk.back()->sender().start(TimePoint::zero() +
                                rng.uniform_duration(Duration::zero(), Duration::millis(500)));
  }

  // Sample the TFRC allowed rate each second: its variability is what a
  // media codec would have to chase.
  std::vector<double> rate_samples;
  sim::PeriodicProcess sampler(sim, Duration::seconds(1),
                               [&] { rate_samples.push_back(stream.sender().rate_bps()); });
  sampler.start();

  const double secs = 60.0;
  sim.run_until(TimePoint::zero() + Duration::from_seconds(secs));

  Outcome out{};
  out.tfrc_mbps = static_cast<double>(stream.receiver().bytes_received()) * 8.0 / secs / 1e6;
  double tcp_total = 0.0;
  for (auto& f : bulk) {
    tcp_total += static_cast<double>(f->receiver().bytes_received()) * 8.0 / secs / 1e6;
  }
  out.tcp_mbps_per_flow = tcp_total / 7.0;
  out.tfrc_rate_cov = util::coefficient_of_variation(rate_samples);
  return out;
}

}  // namespace

int main() {
  std::puts("One TFRC media stream + 7 bulk TCP flows, 100 Mbps / 50 ms, 60 s.");
  std::puts("Fair share would be 12.5 Mbps each.\n");

  const Outcome window = run(/*paced_bulk=*/false);
  std::printf("bulk = window-based NewReno:  TFRC %5.1f Mbps | TCP %5.1f Mbps/flow | "
              "TFRC rate CoV %.2f\n",
              window.tfrc_mbps, window.tcp_mbps_per_flow, window.tfrc_rate_cov);

  const Outcome paced = run(/*paced_bulk=*/true);
  std::printf("bulk = paced (the §5 remedy): TFRC %5.1f Mbps | TCP %5.1f Mbps/flow | "
              "TFRC rate CoV %.2f\n",
              paced.tfrc_mbps, paced.tcp_mbps_per_flow, paced.tfrc_rate_cov);

  std::puts("\nLesson (paper §5): don't mix rate-based and window-based senders; if the");
  std::puts("application needs TFRC for media, run the bulk transfers paced too.");
  return 0;
}

// Command-line front end: run any of the library's experiments with
// parameters from flags. The artifact a downstream user scripts against.
//
//   lossburst_cli dumbbell --flows 16 --seed 7 --duration 30 --queue red
//   lossburst_cli competition --paced 16 --window 16 --rtt-ms 50
//   lossburst_cli transfer --flows 8 --rtt-ms 200 --mb 64 [--paced] [--sack]
//   lossburst_cli visibility --flows 16 [--paced]
//   lossburst_cli shuffle --nodes 8 --chunk-kb 1024 [--sack]
//   lossburst_cli campaign --paths 8 --duration 30
//
// dumbbell, competition, and transfer accept --fault-plan FILE (a fault-plan
// text file, see src/fault/plan.hpp) and --fault-seed N (override the plan's
// seed). transfer additionally accepts --robust (watchdog + retry +
// re-striping). A malformed plan aborts before the experiment starts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "core/burstiness_study.hpp"
#include "core/shuffle_experiment.hpp"
#include "fault/plan.hpp"

using namespace lossburst;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  std::map<std::string, bool> flags;

  [[nodiscard]] double num(const std::string& key, double fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : std::atof(it->second.c_str());
  }
  [[nodiscard]] std::string str(const std::string& key, const std::string& fallback) const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return flags.contains(key);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.kv[token] = argv[++i];
    } else {
      args.flags[token] = true;
    }
  }
  return args;
}

net::QueueKind parse_queue(const std::string& name) {
  if (name == "red") return net::QueueKind::kRed;
  if (name == "red-ecn") return net::QueueKind::kRedEcn;
  if (name == "pecn") return net::QueueKind::kPersistentEcn;
  return net::QueueKind::kDropTail;
}

/// Load --fault-plan / --fault-seed into `out`. Returns false (with the
/// parser's line-numbered message on stderr) on a malformed plan; the caller
/// must exit non-zero before any experiment work or artifact is produced.
bool load_fault_plan(const Args& a, fault::FaultPlan* out) {
  const std::string path = a.str("fault-plan", "");
  if (path.empty()) {
    if (a.kv.contains("fault-seed")) {
      std::fprintf(stderr, "error: --fault-seed requires --fault-plan\n");
      return false;
    }
    return true;
  }
  const fault::PlanParseResult parsed = fault::parse_plan_file(path);
  if (!parsed.ok) {
    std::fprintf(stderr, "error: bad fault plan: %s\n", parsed.error.c_str());
    return false;
  }
  *out = parsed.plan;
  if (a.kv.contains("fault-seed")) {
    out->seed = static_cast<std::uint64_t>(a.num("fault-seed", 0));
  }
  return true;
}

int cmd_dumbbell(const Args& a) {
  core::DumbbellExperimentConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  cfg.tcp_flows = static_cast<std::size_t>(a.num("flows", 16));
  cfg.duration = util::Duration::from_seconds(a.num("duration", 30));
  cfg.buffer_bdp_fraction = a.num("buffer", 1.0);
  cfg.queue = parse_queue(a.str("queue", "droptail"));
  if (a.flag("paced")) cfg.emission = tcp::EmissionMode::kPaced;
  if (a.flag("dummynet")) {
    cfg.emulate_dummynet = true;
    cfg.rtt_distribution = core::RttDistribution::kDummynetClasses;
  }
  if (!load_fault_plan(a, &cfg.fault)) return 2;
  const auto r = core::run_dumbbell_experiment(cfg);
  std::printf("drops=%llu utilization=%.1f%% goodput=%.1fMbps mean_rtt=%.1fms\n",
              static_cast<unsigned long long>(r.total_drops),
              r.bottleneck_utilization * 100.0, r.aggregate_goodput_mbps,
              r.mean_rtt_s * 1e3);
  if (!cfg.fault.empty()) {
    std::printf("fault: gilbert_drops=%llu flap_drops=%llu corrupted=%llu duplicated=%llu\n",
                static_cast<unsigned long long>(r.fault_totals.gilbert_drops),
                static_cast<unsigned long long>(r.fault_totals.flap_drops),
                static_cast<unsigned long long>(r.fault_totals.corrupted),
                static_cast<unsigned long long>(r.fault_totals.duplicated));
  }
  std::cout << core::summarize_burstiness(r.loss) << '\n'
            << core::render_loss_pdf_chart(r.loss, "inter-loss PDF");
  return 0;
}

int cmd_competition(const Args& a) {
  core::CompetitionConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 7));
  cfg.paced_flows = static_cast<std::size_t>(a.num("paced", 16));
  cfg.window_flows = static_cast<std::size_t>(a.num("window", 16));
  cfg.rtt = util::Duration::from_seconds(a.num("rtt-ms", 50) / 1e3);
  cfg.duration = util::Duration::from_seconds(a.num("duration", 40));
  cfg.queue = parse_queue(a.str("queue", "droptail"));
  cfg.ecn = a.flag("ecn");
  cfg.sack = a.flag("sack");
  if (!load_fault_plan(a, &cfg.fault)) return 2;
  const auto r = core::run_competition(cfg);
  std::printf("paced=%.1fMbps window=%.1fMbps deficit=%.1f%%\n", r.paced_mean_mbps,
              r.window_mean_mbps, r.paced_deficit * 100.0);
  return 0;
}

int cmd_transfer(const Args& a) {
  core::ParallelTransferConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 8));
  cfg.flows = static_cast<std::size_t>(a.num("flows", 4));
  cfg.rtt = util::Duration::from_seconds(a.num("rtt-ms", 50) / 1e3);
  cfg.total_bytes = static_cast<std::uint64_t>(a.num("mb", 64)) << 20;
  if (a.flag("paced")) cfg.emission = tcp::EmissionMode::kPaced;
  cfg.sack = a.flag("sack");
  cfg.robust = a.flag("robust");
  if (!load_fault_plan(a, &cfg.fault)) return 2;
  const auto r = core::run_parallel_transfer(cfg);
  std::printf("latency=%.2fs bound=%.2fs normalized=%.2f flows_with_loss=%zu%s\n",
              r.latency_s, r.lower_bound_s, r.normalized_latency, r.flows_with_loss,
              r.all_completed ? "" : " (INCOMPLETE)");
  if (cfg.robust) {
    std::printf("robust: retries=%zu restripes=%zu\n", r.stripes_retried, r.restripes);
  }
  return 0;
}

int cmd_visibility(const Args& a) {
  core::LossVisibilityConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 9));
  cfg.flows = static_cast<std::size_t>(a.num("flows", 16));
  cfg.emission =
      a.flag("paced") ? tcp::EmissionMode::kPaced : tcp::EmissionMode::kWindowBurst;
  const auto r = core::run_loss_visibility(cfg);
  std::printf("events=%zu mean_drops=%.1f mean_flows_hit=%.2f fraction=%.1f%%\n",
              r.events.size(), r.mean_drops_per_event, r.mean_flows_hit,
              r.mean_fraction_hit * 100.0);
  std::printf("models: eq1(rate)=%.2f eq2(window)=%.2f K=%.1f\n", r.model_rate_based,
              r.model_window_based, r.k_packets_per_rtt);
  return 0;
}

int cmd_shuffle(const Args& a) {
  core::ShuffleConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 12));
  cfg.nodes = static_cast<std::size_t>(a.num("nodes", 8));
  cfg.bytes_per_flow = static_cast<std::uint64_t>(a.num("chunk-kb", 1024)) << 10;
  cfg.sack = a.flag("sack");
  if (a.flag("paced")) cfg.emission = tcp::EmissionMode::kPaced;
  const auto r = core::run_shuffle(cfg);
  std::printf("completion=%.2fs bound=%.2fs normalized=%.2f drops=%llu%s\n",
              r.completion_s, r.lower_bound_s, r.normalized,
              static_cast<unsigned long long>(r.downlink_drops),
              r.all_completed ? "" : " (INCOMPLETE)");
  return 0;
}

int cmd_campaign(const Args& a) {
  inet::CampaignConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(a.num("seed", 2006));
  cfg.num_paths = static_cast<std::size_t>(a.num("paths", 8));
  cfg.probe_duration = util::Duration::from_seconds(a.num("duration", 30));
  const auto r = inet::run_campaign(cfg);
  std::printf("paths=%zu validated=%zu pooled_losses=%zu\n", r.paths.size(),
              r.validated_paths, r.pooled.loss_count);
  std::cout << core::summarize_burstiness(r.pooled) << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "dumbbell") return cmd_dumbbell(args);
    if (args.command == "competition") return cmd_competition(args);
    if (args.command == "transfer") return cmd_transfer(args);
    if (args.command == "visibility") return cmd_visibility(args);
    if (args.command == "shuffle") return cmd_shuffle(args);
    if (args.command == "campaign") return cmd_campaign(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::puts("usage: lossburst_cli <dumbbell|competition|transfer|visibility|shuffle|campaign>"
            " [--key value ...] [--paced] [--sack] [--ecn] [--dummynet]"
            " [--fault-plan FILE] [--fault-seed N] [--robust]");
  std::puts("examples:");
  std::puts("  lossburst_cli dumbbell --flows 16 --duration 30 --queue red");
  std::puts("  lossburst_cli competition --paced 16 --window 16 --rtt-ms 50");
  std::puts("  lossburst_cli transfer --flows 8 --rtt-ms 200 --mb 64 --sack");
  std::puts("  lossburst_cli transfer --robust --fault-plan chaos.plan --fault-seed 3");
  std::puts("  lossburst_cli shuffle --nodes 8 --chunk-kb 1024");
  return args.command.empty() ? 0 : 1;
}

// Quickstart: build a small dumbbell, run 16 NewReno flows over a DropTail
// bottleneck, and print the sub-RTT loss-burstiness analysis — the paper's
// §3 measurement in ~20 lines of application code.
#include <cstdio>
#include <iostream>

#include "core/burstiness_study.hpp"

int main() {
  using namespace lossburst;

  core::DumbbellExperimentConfig cfg;
  cfg.seed = 42;
  cfg.tcp_flows = 16;
  cfg.duration = util::Duration::seconds(30);

  std::puts("Running the Figure-1 dumbbell: 16 NewReno flows + 50 on-off noise");
  std::puts("flows over a 100 Mbps DropTail bottleneck, 30 simulated seconds...\n");

  const core::DumbbellExperimentResult r = core::run_dumbbell_experiment(cfg);

  std::printf("bottleneck forwarded %llu packets (utilization %.1f%%), dropped %llu\n",
              static_cast<unsigned long long>(r.bottleneck_packets),
              r.bottleneck_utilization * 100.0,
              static_cast<unsigned long long>(r.total_drops));
  std::printf("aggregate TCP goodput: %.1f Mbps, mean base RTT: %.1f ms\n\n",
              r.aggregate_goodput_mbps, r.mean_rtt_s * 1e3);

  std::cout << core::summarize_burstiness(r.loss) << "\n\n";
  std::cout << core::render_loss_pdf_chart(r.loss, "PDF of inter-loss time (quickstart)");
  return 0;
}

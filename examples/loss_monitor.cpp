// Example: attaching a custom tracer to a live simulation — the library's
// extension point for building your own measurement tools. Streams every
// drop event as CSV while the simulation runs and prints a run-length
// summary at the end.
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/gilbert.hpp"
#include "core/noise.hpp"
#include "net/network.hpp"
#include "net/trace.hpp"
#include "sim/simulator.hpp"
#include "tcp/flow.hpp"

using namespace lossburst;
using util::Duration;
using util::TimePoint;

namespace {

/// A QueueTracer that streams drops as they happen (like tcpdump on the
/// router) instead of buffering them.
class StreamingTracer final : public net::QueueTracer {
 public:
  void on_drop(TimePoint t, const net::Packet& pkt, std::size_t qlen) override {
    ++drops_;
    if (drops_ <= 25) {  // show the first few live
      std::printf("drop: t=%.6fs flow=%u seq=%llu qlen=%zu\n", t.seconds(), pkt.flow,
                  static_cast<unsigned long long>(pkt.seq), qlen);
    }
    last_ = t;
  }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  std::uint64_t drops_ = 0;
  TimePoint last_;
};

}  // namespace

int main() {
  sim::Simulator sim(123);
  net::Network network(sim);

  net::DumbbellConfig cfg;
  cfg.flow_count = 8;
  cfg.buffer_bdp_fraction = 0.25;
  net::Dumbbell bell = net::build_dumbbell(network, cfg);

  StreamingTracer streaming;
  bell.bottleneck_fwd->queue().set_tracer(&streaming);

  std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
  for (std::size_t i = 0; i < cfg.flow_count; ++i) {
    flows.push_back(std::make_unique<tcp::TcpFlow>(
        sim, static_cast<net::FlowId>(i + 1), bell.fwd_routes[i], bell.rev_routes[i]));
    flows.back()->sender().start(TimePoint::zero() +
                                 Duration::millis(static_cast<std::int64_t>(i) * 100));
  }
  core::NoiseBundle noise =
      core::attach_noise(sim, bell, 50, 0.10, cfg.bottleneck_bps, util::Rng(7));

  std::puts("running 20 simulated seconds; first 25 drop events stream below:");
  sim.run_until(TimePoint::zero() + Duration::seconds(20));

  std::printf("\ntotal drops at bottleneck: %llu\n",
              static_cast<unsigned long long>(streaming.drops()));
  std::printf("bottleneck forwarded %llu packets\n",
              static_cast<unsigned long long>(bell.bottleneck_fwd->packets_sent()));
  for (const auto& f : flows) {
    std::printf("flow %u: sent=%llu rtx=%llu timeouts=%llu goodput=%.1f Mbps\n",
                f->sender().flow(),
                static_cast<unsigned long long>(f->sender().stats().segments_sent),
                static_cast<unsigned long long>(f->sender().stats().retransmits),
                static_cast<unsigned long long>(f->sender().stats().timeouts),
                static_cast<double>(f->receiver().bytes_received()) * 8.0 / 20.0 / 1e6);
  }
  return 0;
}
